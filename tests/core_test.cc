// Tests for the core ego-betweenness machinery: the reference oracle, the
// shared-map edge processing, and both top-k searches — including golden
// traces against the paper's published running example (Fig. 1-3).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/all_ego.h"
#include "core/base_search.h"
#include "core/bounded_search.h"
#include "core/edge_processor.h"
#include "core/naive.h"
#include "core/opt_search.h"
#include "core/smap_store.h"
#include "graph/degree_order.h"
#include "graph/edge_set.h"
#include "graph/example_graphs.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "util/fraction.h"
#include "util/random.h"

namespace egobw {
namespace {

constexpr double kTol = 1e-9;

// Ground-truth ego-betweennesses of the paper's Fig. 1 graph, as verified
// against every worked example (Examples 1-5 and the Fig. 2/3 traces).
std::map<char, Fraction> Figure1GroundTruth() {
  return {
      {'a', Fraction(1)},      {'b', Fraction(1)},     {'c', Fraction(41, 6)},
      {'d', Fraction(14, 3)},  {'e', Fraction(9, 2)},  {'f', Fraction(11)},
      {'g', Fraction(2, 3)},   {'h', Fraction(2, 3)},  {'i', Fraction(8)},
      {'j', Fraction(2)},      {'k', Fraction(1)},     {'u', Fraction(0)},
      {'v', Fraction(0)},      {'x', Fraction(10)},    {'y', Fraction(0)},
      {'z', Fraction(0)},
  };
}

std::vector<double> SortedDesc(std::vector<double> v) {
  std::sort(v.begin(), v.end(), std::greater<>());
  return v;
}

std::vector<double> TopKValues(const TopKResult& r) {
  std::vector<double> v;
  for (const auto& e : r) v.push_back(e.cb);
  return v;
}

void ExpectTopKMatchesGroundTruth(const TopKResult& got,
                                  const std::vector<double>& all_cb,
                                  uint32_t k) {
  std::vector<double> expected = SortedDesc(all_cb);
  expected.resize(std::min<size_t>(k, expected.size()));
  std::vector<double> actual = TopKValues(got);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-6) << "rank " << i;
  }
}

// ---------------------------------------------------------------- Reference

TEST(ReferenceTest, PaperFigure1ExactFractions) {
  Graph g = PaperFigure1();
  for (const auto& [name, expected] : Figure1GroundTruth()) {
    Fraction got = ReferenceEgoBetweenness(g, PaperFigure1Id(name));
    EXPECT_EQ(got, expected) << "vertex " << name << ": got "
                             << got.ToString() << " want "
                             << expected.ToString();
  }
}

TEST(ReferenceTest, Example1EgoNetworkOfD) {
  // Example 1 of the paper: CB(d) = 14/3 with b_ci = b_hg = 1/3,
  // b_ga = b_gb = b_ha = b_hb = 1/2, b_ia = b_ib = 1.
  Graph g = PaperFigure1();
  EXPECT_EQ(ReferenceEgoBetweenness(g, PaperFigure1Id('d')),
            Fraction(14, 3));
}

TEST(ReferenceTest, AnalyticFamilies) {
  // Cliques: every neighbor pair adjacent -> CB = 0.
  Graph clique = Clique(8);
  for (VertexId v = 0; v < 8; ++v) {
    EXPECT_EQ(ReferenceEgoBetweenness(clique, v), Fraction(0));
  }
  // Star: center connects all C(n-1, 2) leaf pairs alone; leaves see one
  // neighbor.
  Graph star = Star(9);
  EXPECT_EQ(ReferenceEgoBetweenness(star, 0), Fraction(28));
  EXPECT_EQ(ReferenceEgoBetweenness(star, 3), Fraction(0));
  // Path interior vertices bridge their two neighbors.
  Graph path = Path(6);
  EXPECT_EQ(ReferenceEgoBetweenness(path, 0), Fraction(0));
  EXPECT_EQ(ReferenceEgoBetweenness(path, 2), Fraction(1));
  // Complete bipartite K_{3,4}: a left vertex's ego network is a star — its
  // 4 right neighbors are pairwise non-adjacent and the other left vertices
  // are NOT in the ego network, so every pair is bridged only by the ego:
  // CB = C(4,2) = 6 (and C(3,2) = 3 on the right side).
  Graph kb = CompleteBipartite(3, 4);
  EXPECT_EQ(ReferenceEgoBetweenness(kb, 0), Fraction(6));
  EXPECT_EQ(ReferenceEgoBetweenness(kb, 4), Fraction(3));
  // Two cliques sharing a bridge: (s-1)^2 cross pairs, bridge-only.
  Graph two = TwoCliquesBridge(5);
  EXPECT_EQ(ReferenceEgoBetweenness(two, 0), Fraction(16));
  EXPECT_EQ(ReferenceEgoBetweenness(two, 1), Fraction(0));
}

TEST(ReferenceTest, CycleVerticesBridgeOnePair) {
  Graph cycle = Cycle(7);
  for (VertexId v = 0; v < 7; ++v) {
    EXPECT_EQ(ReferenceEgoBetweenness(cycle, v), Fraction(1));
  }
  // Cycle of 4: the two neighbors of v are also joined by the antipode?
  // No — the antipode is not in GE(v), so CB is still 1.
  Graph c4 = Cycle(4);
  EXPECT_EQ(ReferenceEgoBetweenness(c4, 0), Fraction(1));
  // Triangle: all adjacent.
  Graph c3 = Cycle(3);
  EXPECT_EQ(ReferenceEgoBetweenness(c3, 0), Fraction(0));
}

// ---------------------------------------------------------------- Local vs reference

TEST(LocalComputationTest, MatchesReferenceOnFigure1) {
  Graph g = PaperFigure1();
  EgoScratch scratch(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_NEAR(ComputeEgoBetweennessLocal(g, v, &scratch),
                ReferenceEgoBetweenness(g, v).ToDouble(), kTol);
  }
}

struct RandomGraphParam {
  const char* name;
  int kind;  // 0 = ER, 1 = BA, 2 = RMAT, 3 = Collaboration, 4 = WS
  uint32_t n;
  uint32_t m_or_deg;
  uint64_t seed;
};

class RandomGraphSuite : public ::testing::TestWithParam<RandomGraphParam> {
 protected:
  Graph Make() const {
    const auto& p = GetParam();
    switch (p.kind) {
      case 0:
        return ErdosRenyi(p.n, p.m_or_deg, p.seed);
      case 1:
        return BarabasiAlbert(p.n, p.m_or_deg, p.seed);
      case 2:
        return RMat(10, p.m_or_deg, 0.57, 0.19, 0.19, p.seed);
      case 3:
        return Collaboration(p.n, p.n, 5, 16, 0.1, p.seed);
      default:
        return WattsStrogatz(p.n, p.m_or_deg, 0.2, p.seed);
    }
  }
};

TEST_P(RandomGraphSuite, LocalMatchesReference) {
  Graph g = Make();
  EgoScratch scratch(g.NumVertices());
  // Reference is O(d^3): sample vertices on larger graphs. The exact
  // Fraction oracle is used where its int64 arithmetic cannot overflow;
  // high-degree hubs fall back to the double oracle.
  uint32_t step = std::max(1u, g.NumVertices() / 64);
  for (VertexId v = 0; v < g.NumVertices(); v += step) {
    double expected = g.Degree(v) <= 40
                          ? ReferenceEgoBetweenness(g, v).ToDouble()
                          : ReferenceEgoBetweennessDouble(g, v);
    EXPECT_NEAR(ComputeEgoBetweennessLocal(g, v, &scratch), expected, 1e-7)
        << "vertex " << v;
  }
}

TEST_P(RandomGraphSuite, SharedMapPassMatchesLocal) {
  Graph g = Make();
  std::vector<double> all = ComputeAllEgoBetweenness(g);
  EgoScratch scratch(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_NEAR(all[v], ComputeEgoBetweennessLocal(g, v, &scratch), 1e-6)
        << "vertex " << v;
  }
}

TEST_P(RandomGraphSuite, NaiveAllMatchesSharedMapPass) {
  Graph g = Make();
  std::vector<double> a = ComputeAllEgoBetweenness(g);
  std::vector<double> b = ComputeAllEgoBetweennessNaive(g);
  ASSERT_EQ(a.size(), b.size());
  for (size_t v = 0; v < a.size(); ++v) EXPECT_NEAR(a[v], b[v], 1e-6);
}

TEST_P(RandomGraphSuite, SearchesAgreeWithGroundTruthAcrossK) {
  Graph g = Make();
  std::vector<double> all = ComputeAllEgoBetweenness(g);
  for (uint32_t k : {1u, 5u, 32u, g.NumVertices() / 2, g.NumVertices() + 5}) {
    TopKResult base = BaseBSearch(g, k);
    ExpectTopKMatchesGroundTruth(base, all, k);
    TopKResult opt = OptBSearch(g, k);
    ExpectTopKMatchesGroundTruth(opt, all, k);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, RandomGraphSuite,
    ::testing::Values(
        RandomGraphParam{"er_sparse", 0, 120, 300, 101},
        RandomGraphParam{"er_mid", 0, 150, 900, 102},
        RandomGraphParam{"er_dense", 0, 80, 1600, 103},
        RandomGraphParam{"ba3", 1, 300, 3, 104},
        RandomGraphParam{"ba6", 1, 200, 6, 105},
        RandomGraphParam{"rmat4", 2, 0, 4, 106},
        RandomGraphParam{"rmat8", 2, 0, 8, 107},
        RandomGraphParam{"collab", 3, 400, 0, 108},
        RandomGraphParam{"ws", 4, 300, 4, 109}),
    [](const ::testing::TestParamInfo<RandomGraphParam>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------- SMapStore

TEST(SMapStoreTest, InitialValuesAreStaticBounds) {
  Graph g = PaperFigure1();
  SMapStore store(g);
  EXPECT_DOUBLE_EQ(store.Value(PaperFigure1Id('c')), 21.0);
  EXPECT_DOUBLE_EQ(store.Value(PaperFigure1Id('i')), 15.0);
  EXPECT_DOUBLE_EQ(store.Value(PaperFigure1Id('k')), 1.0);
  EXPECT_DOUBLE_EQ(store.Value(PaperFigure1Id('u')), 0.0);
}

TEST(SMapStoreTest, ValueTracksMutations) {
  Graph g = Star(5);  // Degrees: center 4, leaves 1.
  SMapStore store(g);
  EXPECT_DOUBLE_EQ(store.Value(0), 6.0);
  store.SetAdjacent(0, 1, 2);
  EXPECT_DOUBLE_EQ(store.Value(0), 5.0);
  store.AddConnectors(0, 3, 4, 1);
  EXPECT_DOUBLE_EQ(store.Value(0), 4.5);
  store.AddConnectors(0, 3, 4, 1);
  EXPECT_NEAR(store.Value(0), 4.0 + 1.0 / 3.0, kTol);
  store.AddConnectors(0, 3, 4, -2);  // Back to absent.
  EXPECT_NEAR(store.Value(0), 5.0, kTol);
  EXPECT_NEAR(store.EvaluateExact(0), store.Value(0), kTol);
}

TEST(SMapStoreTest, AdjacentToCountedTransition) {
  Graph g = Star(5);
  SMapStore store(g);
  store.SetAdjacent(0, 1, 2);
  EXPECT_DOUBLE_EQ(store.Value(0), 5.0);
  store.AdjacentToCounted(0, 1, 2, 2);
  EXPECT_NEAR(store.Value(0), 5.0 + 1.0 / 3.0, kTol);
  EXPECT_EQ(store.GetPair(0, 1, 2, -1), 2);
}

TEST(SMapStoreTest, NeighborAddRemoveAccounting) {
  SMapStore store(4);
  EXPECT_DOUBLE_EQ(store.Value(0), 0.0);
  store.OnNeighborAdded(0);  // Degree 0 -> 1: no pairs yet.
  EXPECT_DOUBLE_EQ(store.Value(0), 0.0);
  store.OnNeighborAdded(0);  // Degree 1 -> 2: one new pair.
  EXPECT_DOUBLE_EQ(store.Value(0), 1.0);
  store.OnNeighborAdded(0);  // Degree 2 -> 3: two new pairs.
  EXPECT_DOUBLE_EQ(store.Value(0), 3.0);
  EXPECT_EQ(store.DegreeOf(0), 3u);
  store.RemovePair(0, 1, 2);  // Absent pair: contribution 1 vanishes.
  EXPECT_DOUBLE_EQ(store.Value(0), 2.0);
  store.OnNeighborRemoved(0);
  EXPECT_EQ(store.DegreeOf(0), 2u);
}

// ---------------------------------------------------------------- BoundStore

TEST(BoundStoreTest, InitialValuesAreStaticBounds) {
  Graph g = PaperFigure1();
  BoundStore store(g);
  EXPECT_DOUBLE_EQ(store.Value(PaperFigure1Id('c')), 21.0);
  EXPECT_DOUBLE_EQ(store.Value(PaperFigure1Id('i')), 15.0);
  EXPECT_DOUBLE_EQ(store.Value(PaperFigure1Id('k')), 1.0);
  EXPECT_DOUBLE_EQ(store.Value(PaperFigure1Id('u')), 0.0);
}

TEST(BoundStoreTest, RankLookupsMatchAdjacencyPositions) {
  Graph g = BarabasiAlbert(300, 5, 91);
  BoundStore store(g);
  std::vector<uint32_t> ranks;
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    auto nbrs = g.Neighbors(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_EQ(store.RankOf(u, nbrs[i]), i);
    }
    // Every third neighbor, as a sorted sub-span through the gallop path.
    std::vector<VertexId> members;
    for (size_t i = 0; i < nbrs.size(); i += 3) members.push_back(nbrs[i]);
    store.RanksIn(u, members, &ranks);
    ASSERT_EQ(ranks.size(), members.size());
    for (size_t i = 0; i < members.size(); ++i) {
      EXPECT_EQ(ranks[i], store.RankOf(u, members[i]));
    }
  }
}

// The bound store's value arithmetic must be bit-identical to SMapStore's
// under the same logical mutation sequence (below the saturation cap) —
// the property that keeps every serial ũb trajectory, and therefore every
// admission decision, unchanged by the rank-packed rewrite.
TEST(BoundStoreTest, ValueTracksSMapStoreBitForBit) {
  Graph g = BarabasiAlbert(200, 6, 77, 0.4);
  EdgeSet edges(g);
  SMapStore counted(g);
  BoundStore bounds(g);
  Rng rng(5);
  std::vector<std::pair<uint32_t, uint32_t>> one_pair(1);
  for (int step = 0; step < 30000; ++step) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    auto nbrs = g.Neighbors(u);
    if (nbrs.size() < 2) continue;
    uint32_t ri = static_cast<uint32_t>(rng.NextBounded(nbrs.size()));
    uint32_t rj = static_cast<uint32_t>(rng.NextBounded(nbrs.size()));
    if (ri == rj) continue;
    VertexId x = nbrs[ri];
    VertexId y = nbrs[rj];
    if (edges.Contains(x, y)) {
      counted.SetAdjacent(u, x, y);
      bounds.MarkAdjacent(u, ri, rj);
    } else {
      counted.AddConnectors(u, x, y, 1);
      one_pair[0] = {ri, rj};
      bounds.AddConnectorsBatch(u, one_pair);
    }
    if (step % 97 == 0) {
      uint64_t cb, bb;
      double cv = counted.Value(u);
      double bv = bounds.Value(u);
      std::memcpy(&cb, &cv, sizeof(cb));
      std::memcpy(&bb, &bv, sizeof(bb));
      ASSERT_EQ(cb, bb) << "value diverges at vertex " << u << " step "
                        << step;
    }
  }
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    EXPECT_DOUBLE_EQ(counted.Value(u), bounds.Value(u)) << u;
  }
}

TEST(BoundStoreTest, SaturatedCountsFloorTheContribution) {
  // 300 connectors on one pair: the exact bound would approach the "pair
  // fully explained" limit, the saturated bound floors the contribution at
  // 1/(kCountCap + 1) — still an upper bound on the exact value.
  Graph g = Star(5);
  SMapStore counted(g);
  BoundStore bounds(g);
  std::vector<std::pair<uint32_t, uint32_t>> one_pair(1);
  for (int i = 0; i < 300; ++i) {
    counted.AddConnectors(0, 1, 2, 1);
    one_pair[0] = {0, 1};
    bounds.AddConnectorsBatch(0, one_pair);
  }
  EXPECT_NEAR(counted.Value(0), 5.0 + 1.0 / 301.0, kTol);
  EXPECT_NEAR(bounds.Value(0), 5.0 + 1.0 / 255.0, kTol);
  EXPECT_GE(bounds.Value(0), counted.Value(0));
  EXPECT_EQ(bounds.SetOf(0).Get(0, 1), RankPairSet::kCountCap);
}

TEST(BoundStoreTest, WideStateKeepsUbExactPast254Connectors) {
  // Regression for the PR-3 saturation caveat: a REAL >254-connector pair.
  // The owner has degree 302 (> kCountCap + 2), so its RankPairSet widens
  // to 2-byte states the moment the pair reaches 254 connectors, and the
  // incremental ũb must replay the counted store's arithmetic op-for-op
  // through all 300 connectors — bit-identical values, where the old
  // 1-byte state floored every connector past the 254th.
  Graph g = Star(303);  // Center 0, degree 302.
  ASSERT_GE(g.Degree(0), RankPairSet::kWideStateDegree);
  SMapStore counted(g);
  BoundStore bounds(g);
  ASSERT_FALSE(bounds.SetOf(0).IsWideState());  // Lazy: narrow until needed.
  ASSERT_TRUE(bounds.SetOf(0).CanWidenState());
  std::vector<std::pair<uint32_t, uint32_t>> one_pair(1);
  for (int i = 0; i < 300; ++i) {
    counted.AddConnectors(0, 1, 2, 1);  // Leaves 1, 2 sit at ranks 0, 1.
    one_pair[0] = {0, 1};
    bounds.AddConnectorsBatch(0, one_pair);
    uint64_t cb, bb;
    double cv = counted.Value(0);
    double bv = bounds.Value(0);
    std::memcpy(&cb, &cv, sizeof(cb));
    std::memcpy(&bb, &bv, sizeof(bb));
    ASSERT_EQ(cb, bb) << "ũb diverges from exact at connector " << i + 1;
  }
  EXPECT_EQ(bounds.SetOf(0).Get(0, 1), 300);
  EXPECT_TRUE(bounds.SetOf(0).IsWideState());  // Saturation upgraded it.
  EXPECT_NEAR(counted.Value(0),
              StaticVertexBound(302.0) - 1.0 + 1.0 / 301.0, kTol);
}

// ---------------------------------------------------------------- EdgeProcessor

TEST(EdgeProcessorTest, CompletesMapsInDegreeOrder) {
  Graph g = PaperFigure1();
  SMapStore store(g);
  EdgeSet edges(g);
  DegreeOrder order(g);
  SearchStats stats;
  EdgeProcessor proc(g, edges, &store, &stats);
  for (VertexId u : order.Order()) {
    proc.ProcessForwardEdgesOf(u, order);
    EXPECT_TRUE(proc.Complete(u)) << PaperFigure1Name(u);
  }
  EXPECT_EQ(stats.edges_processed, g.NumEdges());
  for (const auto& [name, expected] : Figure1GroundTruth()) {
    EXPECT_NEAR(store.EvaluateExact(PaperFigure1Id(name)),
                expected.ToDouble(), kTol)
        << name;
    EXPECT_NEAR(store.Value(PaperFigure1Id(name)), expected.ToDouble(), kTol)
        << name << " (incremental value)";
  }
}

TEST(EdgeProcessorTest, OnDemandCompletionMatches) {
  Graph g = PaperFigure1();
  SMapStore store(g);
  EdgeSet edges(g);
  SearchStats stats;
  EdgeProcessor proc(g, edges, &store, &stats);
  // Complete vertices in an arbitrary order via ProcessAllEdgesOf.
  for (char name : {'x', 'a', 'f', 'c', 'k'}) {
    VertexId v = PaperFigure1Id(name);
    proc.ProcessAllEdgesOf(v);
    EXPECT_TRUE(proc.Complete(v));
    EXPECT_NEAR(store.EvaluateExact(v),
                Figure1GroundTruth()[name].ToDouble(), kTol)
        << name;
  }
  // No edge is ever processed twice.
  EXPECT_LE(stats.edges_processed, g.NumEdges());
}

TEST(EdgeProcessorTest, TriangleCountMatchesBruteForce) {
  Graph g = ErdosRenyi(80, 600, 201);
  SMapStore store(g);
  EdgeSet edges(g);
  DegreeOrder order(g);
  SearchStats stats;
  EdgeProcessor proc(g, edges, &store, &stats);
  for (VertexId u : order.Order()) proc.ProcessForwardEdgesOf(u, order);
  uint64_t triangles = 0;  // Brute-force triangle count (each once).
  for (const auto& [u, v] : g.Edges()) {
    std::vector<VertexId> common;
    g.CommonNeighbors(u, v, &common);
    triangles += common.size();
  }
  // Each triangle has 3 edges, so Σ per-edge common counts = 3 * #triangles,
  // and the processor touches each triangle once per edge.
  EXPECT_EQ(stats.triangles, triangles);
}

// ---------------------------------------------------------------- BaseBSearch

TEST(BaseBSearchTest, PaperFigure1Top5) {
  Graph g = PaperFigure1();
  SearchStats stats;
  TopKResult r = BaseBSearch(g, 5, &stats);
  ASSERT_EQ(r.size(), 5u);
  // Example 2/3: R = {f, x, i, c, d} with CB 11, 10, 8, 41/6, 14/3.
  EXPECT_EQ(PaperFigure1Name(r[0].vertex), "f");
  EXPECT_NEAR(r[0].cb, 11.0, kTol);
  EXPECT_EQ(PaperFigure1Name(r[1].vertex), "x");
  EXPECT_NEAR(r[1].cb, 10.0, kTol);
  EXPECT_EQ(PaperFigure1Name(r[2].vertex), "i");
  EXPECT_NEAR(r[2].cb, 8.0, kTol);
  EXPECT_EQ(PaperFigure1Name(r[3].vertex), "c");
  EXPECT_NEAR(r[3].cb, 41.0 / 6.0, kTol);
  EXPECT_EQ(PaperFigure1Name(r[4].vertex), "d");
  EXPECT_NEAR(r[4].cb, 14.0 / 3.0, kTol);
  // Example 3: BaseBSearch computes exactly 10 vertices
  // (c,i,f,d,x,e,h,g,b,a) before ub(j) = 3 < CB(d) terminates the scan.
  EXPECT_EQ(stats.exact_computations, 10u);
  EXPECT_EQ(stats.pruned, 6u);
}

TEST(BaseBSearchTest, KLargerThanNReturnsEverything) {
  Graph g = PaperFigure1();
  TopKResult r = BaseBSearch(g, 100);
  EXPECT_EQ(r.size(), 16u);
  EXPECT_NEAR(r.back().cb, 0.0, kTol);
}

TEST(BaseBSearchTest, KZeroAndEmptyGraph) {
  Graph g = PaperFigure1();
  EXPECT_TRUE(BaseBSearch(g, 0).empty());
  Graph empty = GraphBuilder(0).Build();
  EXPECT_TRUE(BaseBSearch(empty, 5).empty());
}

TEST(BaseBSearchTest, IsolatedVerticesHandled) {
  GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = b.Build();
  TopKResult r = BaseBSearch(g, 6);
  ASSERT_EQ(r.size(), 6u);
  EXPECT_NEAR(r[0].cb, 1.0, kTol);  // Vertex 1 bridges 0 and 2.
}

// ---------------------------------------------------------------- OptBSearch

// Captures the OptBSearch trace for the golden Fig. 3 test.
class TraceRecorder : public SearchObserver {
 public:
  void OnPop(VertexId v, double b) override { pops.push_back({v, b}); }
  void OnBound(VertexId v, double b) override { bounds.push_back({v, b}); }
  void OnPushBack(VertexId v, double b) override {
    pushbacks.push_back({v, b});
  }
  void OnExact(VertexId v, double cb) override { exacts.push_back({v, cb}); }

  double BoundAfterPopOf(VertexId v, int occurrence = 1) const {
    int seen = 0;
    for (const auto& [vertex, b] : bounds) {
      if (vertex == v && ++seen == occurrence) return b;
    }
    return -1;
  }

  std::vector<std::pair<VertexId, double>> pops, bounds, pushbacks, exacts;
};

TEST(OptBSearchTest, PaperFigure1Top5WithTheta1) {
  Graph g = PaperFigure1();
  SearchStats stats;
  TraceRecorder trace;
  OptBSearchOptions opts;
  opts.theta = 1.0;
  opts.observer = &trace;
  TopKResult r = OptBSearch(g, 5, opts, &stats);
  ASSERT_EQ(r.size(), 5u);
  EXPECT_EQ(PaperFigure1Name(r[0].vertex), "f");
  EXPECT_EQ(PaperFigure1Name(r[1].vertex), "x");
  EXPECT_EQ(PaperFigure1Name(r[2].vertex), "i");
  EXPECT_EQ(PaperFigure1Name(r[3].vertex), "c");
  EXPECT_EQ(PaperFigure1Name(r[4].vertex), "d");
  // Example 4: OptBSearch invokes EgoBWCal only six times (c,i,f,x,d,e)
  // versus BaseBSearch's ten.
  EXPECT_EQ(stats.exact_computations, 6u);
  std::vector<std::string> exact_names;
  for (const auto& [v, cb] : trace.exacts) {
    exact_names.push_back(PaperFigure1Name(v));
  }
  EXPECT_EQ(exact_names,
            (std::vector<std::string>{"c", "i", "f", "x", "d", "e"}));
}

TEST(OptBSearchTest, PaperFigure3DynamicBoundTrace) {
  // Golden values from the paper's Fig. 3: after computing c and i exactly,
  // popping f yields the tightened bound ũb(f) = 23/2 and popping d yields
  // ũb(d) = 19/3; later g, b, a are re-pushed with 5/6, 1, 1.
  // (The figure's (h, 1/3) entry is an arithmetic slip in the paper: the
  // complete identified information for h gives ũb(h) = CB(h) = 2/3, and an
  // upper bound cannot be below the true value.)
  Graph g = PaperFigure1();
  TraceRecorder trace;
  OptBSearchOptions opts;
  opts.theta = 1.0;
  opts.observer = &trace;
  OptBSearch(g, 5, opts);
  EXPECT_NEAR(trace.BoundAfterPopOf(PaperFigure1Id('f')), 23.0 / 2.0, kTol);
  EXPECT_NEAR(trace.BoundAfterPopOf(PaperFigure1Id('d')), 19.0 / 3.0, kTol);
  EXPECT_NEAR(trace.BoundAfterPopOf(PaperFigure1Id('g')), 5.0 / 6.0, kTol);
  EXPECT_NEAR(trace.BoundAfterPopOf(PaperFigure1Id('b')), 1.0, kTol);
  EXPECT_NEAR(trace.BoundAfterPopOf(PaperFigure1Id('a')), 1.0, kTol);
  EXPECT_NEAR(trace.BoundAfterPopOf(PaperFigure1Id('h')), 2.0 / 3.0, kTol);
  // e is first re-pushed with ũb(e) = 5 (Fig. 3(e)), then computed: 9/2.
  EXPECT_NEAR(trace.BoundAfterPopOf(PaperFigure1Id('e')), 5.0, kTol);
  bool found_e = false;
  for (const auto& [v, cb] : trace.exacts) {
    if (v == PaperFigure1Id('e')) {
      EXPECT_NEAR(cb, 4.5, kTol);
      found_e = true;
    }
  }
  EXPECT_TRUE(found_e);
}

TEST(OptBSearchTest, ThetaDoesNotChangeAnswers) {
  Graph g = BarabasiAlbert(400, 4, 301);
  std::vector<double> all = ComputeAllEgoBetweenness(g);
  for (double theta : {1.0, 1.05, 1.15, 1.3, 2.0, 100.0}) {
    OptBSearchOptions opts;
    opts.theta = theta;
    TopKResult r = OptBSearch(g, 25, opts);
    ExpectTopKMatchesGroundTruth(r, all, 25);
  }
}

TEST(OptBSearchTest, NeverComputesMoreThanBase) {
  for (uint64_t seed : {401ull, 402ull, 403ull}) {
    Graph g = BarabasiAlbert(500, 4, seed);
    for (uint32_t k : {10u, 50u}) {
      SearchStats base_stats;
      SearchStats opt_stats;
      BaseBSearch(g, k, &base_stats);
      OptBSearchOptions opts;
      opts.theta = 1.05;
      OptBSearch(g, k, opts, &opt_stats);
      EXPECT_LE(opt_stats.exact_computations, base_stats.exact_computations)
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(OptBSearchTest, KLargerThanNAndEdgeCases) {
  Graph g = PaperFigure1();
  TopKResult r = OptBSearch(g, 1000);
  EXPECT_EQ(r.size(), 16u);
  EXPECT_TRUE(OptBSearch(g, 0).empty());
  TopKResult top1 = OptBSearch(g, 1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(PaperFigure1Name(top1[0].vertex), "f");
}

TEST(OptBSearchTest, BridgeVertexFoundInstantly) {
  // Two 8-cliques sharing vertex 0: the bridge's CB = 49 dominates, and its
  // static bound is also the largest, so one exact computation may suffice.
  Graph g = TwoCliquesBridge(8);
  SearchStats stats;
  TopKResult r = OptBSearch(g, 1, {.theta = 1.0}, &stats);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].vertex, 0u);
  EXPECT_NEAR(r[0].cb, 49.0, kTol);
  EXPECT_LE(stats.exact_computations, 2u);
}

TEST(OptBSearchTest, ResultsInCanonicalOrder) {
  Graph g = BarabasiAlbert(200, 4, 28, 0.3);
  TopKResult r = OptBSearch(g, 50);
  for (size_t i = 1; i < r.size(); ++i) {
    bool ordered = r[i - 1].cb > r[i].cb ||
                   (r[i - 1].cb == r[i].cb && r[i - 1].vertex < r[i].vertex);
    EXPECT_TRUE(ordered) << "rank " << i;
  }
}

TEST(OptBSearchTest, CliqueAllZero) {
  Graph g = Clique(20);
  TopKResult r = OptBSearch(g, 5);
  for (const auto& e : r) EXPECT_NEAR(e.cb, 0.0, kTol);
}

TEST(OptBSearchTest, StarCenterDominates) {
  Graph g = Star(50);
  TopKResult r = OptBSearch(g, 1);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].vertex, 0u);
  EXPECT_NEAR(r[0].cb, 49.0 * 48.0 / 2.0, kTol);
}

// Soundness property: every dynamic bound reported for a vertex must
// dominate the exact value eventually computed for it.
class BoundDominanceChecker : public SearchObserver {
 public:
  void OnBound(VertexId v, double b) override {
    auto [it, inserted] = min_bound_.emplace(v, b);
    if (!inserted) it->second = std::min(it->second, b);
  }
  void OnExact(VertexId v, double cb) override {
    auto it = min_bound_.find(v);
    ASSERT_NE(it, min_bound_.end());
    EXPECT_LE(cb, it->second + 1e-6) << "vertex " << v;
  }

 private:
  std::map<VertexId, double> min_bound_;
};

TEST(OptBSearchTest, DynamicBoundsAlwaysDominateExactValues) {
  for (uint64_t seed : {21ull, 22ull, 23ull}) {
    Graph g = BarabasiAlbert(300, 5, seed, 0.5);
    BoundDominanceChecker checker;
    OptBSearchOptions opts;
    opts.theta = 1.0;  // Recompute bounds at every pop: maximum scrutiny.
    opts.observer = &checker;
    OptBSearch(g, 20, opts);
  }
}

TEST(OptBSearchTest, StatsConsistentWithObserver) {
  Graph g = BarabasiAlbert(400, 4, 25, 0.4);
  TraceRecorder trace;
  SearchStats stats;
  OptBSearchOptions opts;
  opts.theta = 1.05;
  opts.observer = &trace;
  OptBSearch(g, 30, opts, &stats);
  EXPECT_EQ(stats.heap_pushbacks, trace.pushbacks.size());
  EXPECT_EQ(stats.exact_computations, trace.exacts.size());
  EXPECT_GT(stats.elapsed_seconds, 0.0);
  EXPECT_GT(stats.edges_processed, 0u);
}

TEST(OptBSearchTest, RepeatedRunsAreIdentical) {
  Graph g = RMat(9, 5, 0.6, 0.18, 0.18, 24);
  TopKResult a = OptBSearch(g, 40);
  TopKResult b = OptBSearch(g, 40);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].vertex, b[i].vertex);
    EXPECT_DOUBLE_EQ(a[i].cb, b[i].cb);
  }
}

TEST(OptBSearchTest, TiesOnRegularGraphs) {
  // Every vertex of a long cycle has CB = 1: any k of them is a valid
  // answer, and the returned values must all be 1.
  Graph g = Cycle(40);
  TopKResult r = OptBSearch(g, 7);
  ASSERT_EQ(r.size(), 7u);
  for (const auto& e : r) EXPECT_NEAR(e.cb, 1.0, kTol);
  TopKResult rb = BaseBSearch(g, 7);
  for (const auto& e : rb) EXPECT_NEAR(e.cb, 1.0, kTol);
}

TEST(EdgeProcessorTest, ProcessAllEdgesOfIsIdempotent) {
  Graph g = PaperFigure1();
  SMapStore store(g);
  EdgeSet edges(g);
  SearchStats stats;
  EdgeProcessor proc(g, edges, &store, &stats);
  VertexId c = PaperFigure1Id('c');
  proc.ProcessAllEdgesOf(c);
  uint64_t processed_once = stats.edges_processed;
  double value_once = store.Value(c);
  proc.ProcessAllEdgesOf(c);  // Must be a no-op.
  EXPECT_EQ(stats.edges_processed, processed_once);
  EXPECT_DOUBLE_EQ(store.Value(c), value_once);
}

TEST(SMapStoreTest, TotalEntriesAndMemoryGrow) {
  Graph g = PaperFigure1();
  SMapStore store(g);
  EXPECT_EQ(store.TotalEntries(), 0u);
  store.SetAdjacent(0, 1, 2);
  store.AddConnectors(0, 3, 4, 1);
  EXPECT_EQ(store.TotalEntries(), 2u);
  EXPECT_GT(store.MemoryBytes(), 0u);
}

// ---------------------------------------------------------------- AllEgo

TEST(AllEgoTest, MatchesReferenceOnFigure1) {
  Graph g = PaperFigure1();
  std::vector<double> all = ComputeAllEgoBetweenness(g);
  for (const auto& [name, expected] : Figure1GroundTruth()) {
    EXPECT_NEAR(all[PaperFigure1Id(name)], expected.ToDouble(), kTol) << name;
  }
}

TEST(AllEgoTest, StateMapsAreComplete) {
  Graph g = BarabasiAlbert(200, 3, 501);
  AllEgoState state = ComputeAllEgoBetweennessWithState(g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_NEAR(state.smaps->EvaluateExact(v), state.cb[v], 1e-9);
    EXPECT_NEAR(state.smaps->Value(v), state.cb[v], 1e-6);
  }
}

TEST(AllEgoTest, EmptyAndTinyGraphs) {
  Graph empty = GraphBuilder(0).Build();
  EXPECT_TRUE(ComputeAllEgoBetweenness(empty).empty());
  Graph one = GraphBuilder(1).Build();
  EXPECT_EQ(ComputeAllEgoBetweenness(one), std::vector<double>{0.0});
  Graph pair = Path(2);
  std::vector<double> cb = ComputeAllEgoBetweenness(pair);
  EXPECT_NEAR(cb[0], 0.0, kTol);
  EXPECT_NEAR(cb[1], 0.0, kTol);
}

}  // namespace
}  // namespace egobw
