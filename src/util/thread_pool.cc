#include "util/thread_pool.h"

#include "util/logging.h"

namespace egobw {

ThreadPool::ThreadPool(size_t threads) {
  EGOBW_CHECK(threads >= 1);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    EGOBW_CHECK_MSG(!stop_, "Submit on a stopped ThreadPool");
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained.
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

namespace {

void RunParallel(uint64_t begin, uint64_t end, size_t threads, uint64_t grain,
                 const std::function<void(uint64_t, size_t)>& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  if (threads <= 1 || end - begin <= grain) {
    for (uint64_t i = begin; i < end; ++i) fn(i, 0);
    return;
  }
  std::atomic<uint64_t> cursor{begin};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (;;) {
        uint64_t lo = cursor.fetch_add(grain, std::memory_order_relaxed);
        if (lo >= end) return;
        uint64_t hi = std::min(end, lo + grain);
        for (uint64_t i = lo; i < hi; ++i) fn(i, t);
      }
    });
  }
  for (auto& w : workers) w.join();
}

}  // namespace

void ParallelFor(uint64_t begin, uint64_t end, size_t threads, uint64_t grain,
                 const std::function<void(uint64_t)>& fn) {
  RunParallel(begin, end, threads, grain,
              [&fn](uint64_t i, size_t) { fn(i); });
}

void ParallelForWorker(uint64_t begin, uint64_t end, size_t threads,
                       uint64_t grain,
                       const std::function<void(uint64_t, size_t)>& fn) {
  RunParallel(begin, end, threads, grain, fn);
}

}  // namespace egobw
