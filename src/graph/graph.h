// Immutable undirected graph in CSR form.
//
// This is the substrate every algorithm in the repo runs on: adjacency lists
// are sorted by vertex id (binary-searchable), every undirected edge has a
// stable EdgeId in [0, m), and each adjacency entry carries the EdgeId of the
// edge it crosses (the top-k searches keep a per-edge "processed" bitmask).
//
// Graph is a *view-capable* type: every accessor reads through raw pointers
// that bind either to vectors the Graph owns (the GraphBuilder / generator
// path) or to an external read-only storage region kept alive by a
// shared_ptr — the mmap'd CSR image of disk_csr.h. Engines take
// `const Graph&` and cannot tell the difference; that is the whole point
// (see docs/out_of_core.md).

#ifndef EGOBW_GRAPH_GRAPH_H_
#define EGOBW_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace egobw {

using VertexId = uint32_t;
using EdgeId = uint32_t;

/// Immutable simple undirected graph (no self-loops, no parallel edges).
/// Construct via GraphBuilder (which sanitizes input), the generators, or
/// MappedGraph::Open (a zero-copy view over an mmap'd image).
class Graph {
 public:
  Graph() = default;

  // Copies and moves rebind the view pointers: an owned graph points the
  // view at its own (copied / moved) vectors, an external view shares the
  // keep-alive and keeps pointing into the mapping.
  Graph(const Graph& other) { AdoptFrom(other); }
  Graph& operator=(const Graph& other) {
    if (this != &other) AdoptFrom(other);
    return *this;
  }
  Graph(Graph&& other) noexcept { AdoptFrom(std::move(other)); }
  Graph& operator=(Graph&& other) noexcept {
    if (this != &other) AdoptFrom(std::move(other));
    return *this;
  }

  uint32_t NumVertices() const { return n_; }
  uint64_t NumEdges() const { return m_; }

  uint32_t Degree(VertexId u) const {
    EGOBW_DCHECK(u < NumVertices());
    return static_cast<uint32_t>(offsets_p_[u + 1] - offsets_p_[u]);
  }

  uint32_t MaxDegree() const { return max_degree_; }

  /// Neighbors of u, sorted ascending by vertex id.
  std::span<const VertexId> Neighbors(VertexId u) const {
    EGOBW_DCHECK(u < NumVertices());
    return {adj_p_ + offsets_p_[u], offsets_p_[u + 1] - offsets_p_[u]};
  }

  /// Edge ids parallel to Neighbors(u): IncidentEdges(u)[i] is the id of the
  /// edge (u, Neighbors(u)[i]).
  std::span<const EdgeId> IncidentEdges(VertexId u) const {
    EGOBW_DCHECK(u < NumVertices());
    return {adj_edge_p_ + offsets_p_[u], offsets_p_[u + 1] - offsets_p_[u]};
  }

  /// O(log d) adjacency test via binary search on the smaller endpoint.
  bool HasEdge(VertexId u, VertexId v) const;

  /// Endpoints of an edge id, as (min, max).
  std::pair<VertexId, VertexId> EdgeEndpoints(EdgeId e) const {
    EGOBW_DCHECK(e < NumEdges());
    return edges_p_[e];
  }

  /// All edges as (min, max) pairs, indexed by EdgeId.
  std::span<const std::pair<VertexId, VertexId>> Edges() const {
    return {edges_p_, static_cast<size_t>(m_)};
  }

  /// Sorted intersection N(u) ∩ N(v), appended to *out (cleared first).
  void CommonNeighbors(VertexId u, VertexId v,
                       std::vector<VertexId>* out) const;

  /// Sum over vertices of C(d, 2); useful for sizing estimates.
  uint64_t TotalWedges() const;

  /// Isomorphic copy with vertices relabeled by the locality-blocked order
  /// (see LocalityBlockedOrder): new ids enumerate degree classes in
  /// descending order (0 = highest degree, so scanning new ids ascending is
  /// still scanning by non-increasing static bound), and within a degree
  /// class ids follow BFS discovery so graph clusters are contiguous in the
  /// CSR — both the kernel's sorted-intersection scans and the bound
  /// store's rank lookups then walk cache-adjacent memory. When
  /// `old_to_new` is non-null it receives the permutation
  /// (*old_to_new)[old_id] == new_id. Edge ids are NOT preserved.
  Graph RelabeledByDegree(std::vector<VertexId>* old_to_new = nullptr) const;

  /// Bytes of heap memory held by the CSR arrays. An external (mmap'd) view
  /// owns no heap arrays and reports 0 — the backing bytes are file pages,
  /// accounted by MappedGraph::MappedBytes().
  size_t MemoryBytes() const;

  /// True when the CSR arrays live in external storage (an mmap'd image)
  /// rather than heap vectors owned by this Graph.
  bool IsExternalView() const { return keep_alive_ != nullptr; }

 private:
  friend class GraphBuilder;
  friend class MappedGraph;

  /// Points the view members at the owned vectors. GraphBuilder calls this
  /// after filling the vectors; copies/moves of owned graphs re-call it.
  void BindOwned() {
    offsets_p_ = offsets_.data();
    adj_p_ = adj_.data();
    adj_edge_p_ = adj_edge_.data();
    edges_p_ = edges_.data();
    n_ = offsets_.empty() ? 0 : static_cast<uint32_t>(offsets_.size() - 1);
    m_ = edges_.size();
    keep_alive_.reset();
  }

  /// Zero-copy view over external storage. `keep_alive` owns the storage
  /// (e.g. the munmap guard of a mapped image); the arrays must satisfy the
  /// CSR invariants above — MappedGraph::Open validates them.
  static Graph ExternalView(const uint64_t* offsets, const VertexId* adj,
                            const EdgeId* adj_edge,
                            const std::pair<VertexId, VertexId>* edges,
                            uint32_t n, uint64_t m, uint32_t max_degree,
                            std::shared_ptr<const void> keep_alive) {
    Graph g;
    g.offsets_p_ = offsets;
    g.adj_p_ = adj;
    g.adj_edge_p_ = adj_edge;
    g.edges_p_ = edges;
    g.n_ = n;
    g.m_ = m;
    g.max_degree_ = max_degree;
    g.keep_alive_ = std::move(keep_alive);
    return g;
  }

  template <typename G>
  void AdoptFrom(G&& other) {
    offsets_ = std::forward<G>(other).offsets_;
    adj_ = std::forward<G>(other).adj_;
    adj_edge_ = std::forward<G>(other).adj_edge_;
    edges_ = std::forward<G>(other).edges_;
    max_degree_ = other.max_degree_;
    if (other.keep_alive_ != nullptr) {
      // External view: share the mapping; the pointers stay valid for as
      // long as any view holds the keep-alive.
      offsets_p_ = other.offsets_p_;
      adj_p_ = other.adj_p_;
      adj_edge_p_ = other.adj_edge_p_;
      edges_p_ = other.edges_p_;
      n_ = other.n_;
      m_ = other.m_;
      keep_alive_ = std::forward<G>(other).keep_alive_;
    } else {
      BindOwned();
    }
  }

  // Owned backing (empty for external views).
  std::vector<uint64_t> offsets_;                     // n + 1
  std::vector<VertexId> adj_;                         // 2m, sorted per vertex
  std::vector<EdgeId> adj_edge_;                      // 2m
  std::vector<std::pair<VertexId, VertexId>> edges_;  // m, (min, max)
  uint32_t max_degree_ = 0;

  // The view every accessor reads — into the owned vectors or into external
  // storage kept alive by keep_alive_.
  const uint64_t* offsets_p_ = nullptr;
  const VertexId* adj_p_ = nullptr;
  const EdgeId* adj_edge_p_ = nullptr;
  const std::pair<VertexId, VertexId>* edges_p_ = nullptr;
  uint32_t n_ = 0;
  uint64_t m_ = 0;
  std::shared_ptr<const void> keep_alive_;
};

}  // namespace egobw

#endif  // EGOBW_GRAPH_GRAPH_H_
