#include "core/base_search.h"

#include <optional>
#include <string>
#include <utility>

#include "core/bounded_search.h"
#include "core/edge_processor.h"
#include "core/smap_store.h"
#include "graph/degree_order.h"
#include "graph/edge_set.h"
#include "util/timer.h"

namespace egobw {

Result<TopKResult> RunBaseBSearch(const Graph& g, uint32_t k,
                                  const BaseBSearchOptions& options,
                                  SearchStats* stats) {
  SearchStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  WallTimer timer;

  uint32_t n = g.NumVertices();
  if (k > n) k = n;
  TopKResult result;
  if (k == 0 || n == 0) return result;

  EdgeSet edge_set(g);
  DegreeOrder order(g);
  // Pure on-demand evaluation: BaseBSearch never reads dynamic bounds, so
  // it retains NO global S-map state at all — each scanned vertex's S map
  // is rebuilt locally, evaluated, and discarded.
  BoundEdgeProcessor proc(g, edge_set, /*bounds=*/nullptr, stats);
  TopKAccumulator top(k);
  // Stride 1, as in OptBSearch: each poll gates one whole exact evaluation,
  // so the per-poll clock read is noise next to the unit of work it covers.
  CancelPoller poller(options.cancel, 1);

  bool cancelled = false;
  uint64_t frontier = 0;
  uint32_t scanned = 0;
  for (VertexId u : order.Order()) {
    if (poller.Expired()) {
      cancelled = true;
      frontier = n - scanned;
      break;
    }
    double ub = StaticVertexBound(g.Degree(u));
    // ≺ order is non-increasing in the static bound, so the first vertex
    // strictly below the boundary proves everything after it out too.
    // Vertices that merely TIE the boundary are still computed: one of them
    // could win the canonical id tie-break.
    if (CandidateGate::StaticPrefixDominated(ub, CandidateGate::Snapshot(top))) {
      stats->pruned += n - scanned;
      break;
    }
    ++scanned;
    std::optional<double> cb = proc.ComputeExactCb(u, &poller);
    if (!cb.has_value()) {
      cancelled = true;
      frontier = n - scanned + 1;  // u itself was never decided.
      break;
    }
    ++stats->exact_computations;
    top.Offer(u, *cb);
  }

  stats->elapsed_seconds += timer.Seconds();
  if (cancelled) {
    stats->frontier_remaining += frontier;
    if (options.on_cancel == OnCancel::kAbort) {
      return Status::DeadlineExceeded(
          "BaseBSearch: cancelled with " + std::to_string(frontier) +
          " candidates undecided");
    }
    result = top.Take();
    result.certified = false;
    return result;
  }
  result = top.Take();
  return result;
}

TopKResult BaseBSearch(const Graph& g, uint32_t k, SearchStats* stats) {
  return std::move(RunBaseBSearch(g, k, {}, stats)).value();
}

}  // namespace egobw
