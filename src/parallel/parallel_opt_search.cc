#include "parallel/parallel_opt_search.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/bounded_search.h"
#include "core/diamond_kernel.h"
#include "core/edge_processor.h"
#include "core/smap_store.h"
#include "graph/edge_set.h"
#include "parallel/edge_publish.h"
#include "util/indexed_max_heap.h"
#include "util/logging.h"
#include "util/neighborhood_bitmap.h"
#include "util/spinlock.h"
#include "util/timer.h"

namespace egobw {
namespace {

// Per-worker scratch: everything a worker touches without taking a lock.
struct WorkerCtx {
  explicit WorkerCtx(uint32_t n) : marker(n), kernel(n) {}
  EpochBitset marker;  // Marks N(u) of the candidate being computed.
  DiamondKernel kernel;
  std::vector<VertexId> common;
  std::vector<std::pair<VertexId, VertexId>> pairs;
  uint64_t exact = 0;
  uint64_t pushbacks = 0;
  uint64_t pruned = 0;
  uint64_t edges = 0;
  uint64_t triangles = 0;
  uint64_t increments = 0;
};

class ParallelBoundedEngine {
 public:
  // `new_to_old` translates engine vertex ids to the caller's ids for the
  // canonical tie-break and the published answer (nullptr = identity), so
  // degree relabeling cannot leak into boundary-tie resolution.
  ParallelBoundedEngine(const Graph& g, uint32_t k, size_t threads,
                        const ParallelOptBSearchOptions& options,
                        const std::vector<VertexId>* new_to_old)
      : g_(g),
        edge_set_(g),
        smaps_(g),
        locks_(4096),
        gate_(options.theta),
        top_(k),
        mode_(DefaultKernelMode()),
        threads_(threads == 0 ? 1 : threads),
        new_to_old_(new_to_old),
        shard_mask_(ShardCount(options, threads_) - 1),
        claimed_(std::make_unique<std::atomic<uint8_t>[]>(
            std::max<uint64_t>(1, g.NumEdges()))),
        remaining_(std::make_unique<std::atomic<uint32_t>[]>(
            std::max<uint32_t>(1, g.NumVertices()))) {
    uint32_t n = g.NumVertices();
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      claimed_[e].store(0, std::memory_order_relaxed);
    }
    shards_.reserve(shard_mask_ + 1);
    for (uint32_t s = 0; s <= shard_mask_; ++s) {
      shards_.push_back(std::make_unique<Shard>(n));
    }
    for (VertexId v = 0; v < n; ++v) {
      remaining_[v].store(g.Degree(v), std::memory_order_relaxed);
      shards_[v & shard_mask_]->heap.Push(v, StaticVertexBound(g.Degree(v)));
    }
    ctxs_.reserve(threads_);
    for (size_t t = 0; t < threads_; ++t) {
      ctxs_.push_back(std::make_unique<WorkerCtx>(n));
    }
  }

  // Runs worker 0 on the calling thread; finished when the pool drains.
  void Run() {
    std::vector<std::thread> extra;
    extra.reserve(threads_ - 1);
    for (size_t t = 1; t < threads_; ++t) {
      extra.emplace_back([this, t] { Worker(t); });
    }
    Worker(0);
    for (auto& th : extra) th.join();
  }

  TopKResult TakeResult() { return top_.Take(); }

  void FillStats(SearchStats* stats) const {
    if (stats == nullptr) return;
    for (const auto& ctx : ctxs_) {
      stats->exact_computations += ctx->exact;
      stats->heap_pushbacks += ctx->pushbacks;
      stats->pruned += ctx->pruned;
      stats->edges_processed += ctx->edges;
      stats->triangles += ctx->triangles;
      stats->connector_increments += ctx->increments;
    }
  }

 private:
  struct alignas(64) Shard {
    explicit Shard(uint32_t n) : heap(n) {}
    Spinlock lock;
    IndexedMaxHeap heap;
  };

  static uint32_t ShardCount(const ParallelOptBSearchOptions& options,
                             size_t threads) {
    uint64_t want = options.shards != 0 ? options.shards : 2 * threads;
    want = std::clamp<uint64_t>(want, 1, 32);
    uint32_t p = 1;
    while (p < want) p <<= 1;
    return p;
  }

  VertexId OriginalId(VertexId v) const {
    return new_to_old_ == nullptr ? v : (*new_to_old_)[v];
  }

  // Pops the best key across all shard tops (ties toward the larger id,
  // matching IndexedMaxHeap), counting the calling worker as a candidate
  // holder before the shard lock is released so the termination barrier
  // never misses an in-flight candidate.
  std::optional<std::pair<uint32_t, double>> TryPop() {
    for (;;) {
      int best = -1;
      double best_key = 0.0;
      uint32_t best_id = 0;
      for (size_t s = 0; s < shards_.size(); ++s) {
        Shard& sh = *shards_[s];
        std::lock_guard<Spinlock> lk(sh.lock);
        if (sh.heap.empty()) continue;
        auto [id, key] = sh.heap.Top();
        if (best < 0 || key > best_key ||
            (key == best_key && id > best_id)) {
          best = static_cast<int>(s);
          best_key = key;
          best_id = id;
        }
      }
      if (best < 0) return std::nullopt;
      Shard& sh = *shards_[best];
      std::lock_guard<Spinlock> lk(sh.lock);
      if (sh.heap.empty()) continue;  // Lost a race; rescan.
      active_.fetch_add(1, std::memory_order_seq_cst);
      return sh.heap.PopMax();
    }
  }

  // Re-inserts a candidate with its tightened key. The push-generation
  // counter is bumped under the shard lock so the termination barrier's
  // before/after reads bracket every insertion.
  void Repush(VertexId v, double key) {
    Shard& sh = *shards_[v & shard_mask_];
    std::lock_guard<Spinlock> lk(sh.lock);
    pushes_.fetch_add(1, std::memory_order_seq_cst);
    sh.heap.Push(v, key);
  }

  bool AllShardsEmpty() {
    for (auto& sh : shards_) {
      std::lock_guard<Spinlock> lk(sh->lock);
      if (!sh->heap.empty()) return false;
    }
    return true;
  }

  // Bulk prune after a dominated pop-max: any shard whose top key is
  // strictly below the boundary holds only prunable entries (keys
  // upper-bound true values and the boundary only tightens), so it is
  // cleared in one shot instead of pop-by-pop. Shards whose top is at or
  // above the threshold — e.g. refilled by a concurrent re-push — are left
  // alone and drain through the normal admission path. Returns the number
  // of entries pruned.
  uint64_t DrainDominated() {
    CandidateGate::Boundary boundary = BoundarySnapshot();
    if (!boundary.full) return 0;
    double threshold = boundary.worst_cb - kBoundSlack;
    uint64_t pruned = 0;
    for (auto& sh : shards_) {
      std::lock_guard<Spinlock> lk(sh->lock);
      if (sh->heap.empty() || sh->heap.Top().second >= threshold) continue;
      pruned += sh->heap.size();
      sh->heap.Clear();
    }
    return pruned;
  }

  // O(1) monotone ũb read, serialized with writers on the same stripe so
  // the doubles are never torn.
  double ReadBound(VertexId v) {
    std::lock_guard<Spinlock> lk(locks_.For(v));
    return smaps_.Value(v);
  }

  CandidateGate::Boundary BoundarySnapshot() {
    std::lock_guard<Spinlock> lk(top_lock_);
    return CandidateGate::Snapshot(top_);
  }

  void Publish(VertexId v, double cb) {
    std::lock_guard<Spinlock> lk(top_lock_);
    top_.Offer(OriginalId(v), cb);
  }

  // Processes the claimed edge (u, v): Rule A/B against the shared maps,
  // then the remaining-edge counters drop (release) so waiters observe a
  // complete S map. Mirrors EdgeProcessor::ProcessMarkedEdge.
  void ProcessClaimedEdge(VertexId u, VertexId v, WorkerCtx* ctx) {
    IntersectNeighborhoods(g_, edge_set_, ctx->marker, u, v, &ctx->common);
    ++ctx->edges;
    ctx->triangles += ctx->common.size();

    ctx->pairs.clear();
    auto emit = [ctx](VertexId x, VertexId y) {
      ctx->pairs.emplace_back(x, y);
    };
    if (mode_ == KernelMode::kBitmap) {
      ctx->kernel.ForEachNonAdjacentPair(g_, edge_set_, ctx->common, emit);
    } else {
      DiamondKernel::ForEachNonAdjacentPairLegacy(edge_set_, ctx->common,
                                                  emit);
    }
    ctx->increments += 2 * ctx->pairs.size();

    PublishEdgeRules(&smaps_, &locks_, u, v, ctx->common, ctx->pairs);
    remaining_[u].fetch_sub(1, std::memory_order_acq_rel);
    remaining_[v].fetch_sub(1, std::memory_order_acq_rel);
  }

  // EgoBWCal under contention: claim-and-process this worker's share of
  // u's unprocessed edges, wait out edges claimed by concurrent workers,
  // then evaluate the complete S_u.
  void ComputeExact(VertexId u, WorkerCtx* ctx) {
    if (remaining_[u].load(std::memory_order_acquire) != 0) {
      auto nbrs = g_.Neighbors(u);
      auto eids = g_.IncidentEdges(u);
      // Pre-size S_u from the serial engine's wedge estimate over the
      // still-unclaimed edges (same damping; see WedgeReserveEstimate).
      uint64_t estimate = 0;
      for (size_t i = 0; i < nbrs.size(); ++i) {
        if (claimed_[eids[i]].load(std::memory_order_relaxed) == 0) {
          estimate += std::min(g_.Degree(u), g_.Degree(nbrs[i]));
        }
      }
      {
        std::lock_guard<Spinlock> lk(locks_.For(u));
        smaps_.ReserveFor(u, WedgeReserveEstimate(estimate));
      }
      ctx->marker.Clear();
      for (VertexId w : nbrs) ctx->marker.Set(w);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        EdgeId e = eids[i];
        if (claimed_[e].load(std::memory_order_acquire) != 0) continue;
        if (claimed_[e].exchange(1, std::memory_order_acq_rel) != 0) continue;
        ProcessClaimedEdge(u, nbrs[i], ctx);
      }
      while (remaining_[u].load(std::memory_order_acquire) != 0) {
        std::this_thread::yield();
      }
    }
    double cb;
    {
      // The stripe lock also serializes against redundant Rule-A marks
      // arriving from edges among N(u) (no-ops on a complete map, but they
      // must not interleave with the evaluation scan).
      std::lock_guard<Spinlock> lk(locks_.For(u));
      cb = smaps_.EvaluateExact(u);
    }
    ++ctx->exact;
    Publish(u, cb);
  }

  void Worker(size_t idx) {
    WorkerCtx* ctx = ctxs_[idx].get();
    while (!done_.load(std::memory_order_acquire)) {
      auto popped = TryPop();
      if (!popped) {
        // Termination barrier: generation-fenced emptiness + no holders
        // (see the header's protocol argument).
        uint64_t gen = pushes_.load(std::memory_order_seq_cst);
        if (AllShardsEmpty() &&
            active_.load(std::memory_order_seq_cst) == 0 &&
            pushes_.load(std::memory_order_seq_cst) == gen) {
          done_.store(true, std::memory_order_release);
          return;
        }
        std::this_thread::yield();
        continue;
      }
      auto [v, stale_key] = *popped;
      double ub = ReadBound(v);
      Admission verdict =
          gate_.Decide(stale_key, ub, OriginalId(v), BoundarySnapshot());
      switch (verdict) {
        case Admission::kRepush:
          Repush(v, ub);  // Before the holder count drops (barrier order).
          ++ctx->pushbacks;
          break;
        case Admission::kCompute:
          ComputeExact(v, ctx);
          break;
        case Admission::kPrune:
          ++ctx->pruned;
          break;
        case Admission::kTerminate:
          // The popped key was the best visible one and it is strictly
          // dominated, so bulk-drain every shard that is provably done.
          // This cannot end the pool by fiat — an in-flight candidate on
          // another worker may still re-push a key at or above the
          // boundary — but such a re-push lands after the drain (or in a
          // shard the drain skipped) and flows through normal admission;
          // the termination barrier still decides the actual finish.
          ctx->pruned += 1 + DrainDominated();
          break;
      }
      active_.fetch_sub(1, std::memory_order_seq_cst);
    }
  }

  const Graph& g_;
  EdgeSet edge_set_;
  SMapStore smaps_;
  StripedLocks locks_;
  CandidateGate gate_;
  TopKAccumulator top_;
  Spinlock top_lock_;
  KernelMode mode_;
  size_t threads_;
  const std::vector<VertexId>* new_to_old_;
  uint32_t shard_mask_;
  std::unique_ptr<std::atomic<uint8_t>[]> claimed_;      // Per EdgeId.
  std::unique_ptr<std::atomic<uint32_t>[]> remaining_;   // Per vertex.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<WorkerCtx>> ctxs_;
  std::atomic<uint64_t> pushes_{0};  // Re-push generation counter.
  std::atomic<uint32_t> active_{0};  // Workers holding a popped candidate.
  std::atomic<bool> done_{false};
};

}  // namespace

TopKResult ParallelOptBSearch(const Graph& g, uint32_t k, size_t threads,
                              const ParallelOptBSearchOptions& options,
                              SearchStats* stats) {
  EGOBW_CHECK_MSG(options.theta >= 1.0, "theta must be >= 1");
  WallTimer timer;
  uint32_t n = g.NumVertices();
  if (k > n) k = n;
  if (k == 0 || n == 0) return {};

  TopKResult result;
  if (options.relabel_by_degree) {
    std::vector<VertexId> old_to_new;
    Graph relabeled = g.RelabeledByDegree(&old_to_new);
    std::vector<VertexId> new_to_old(n);
    for (VertexId v = 0; v < n; ++v) new_to_old[old_to_new[v]] = v;
    ParallelBoundedEngine engine(relabeled, k, threads, options, &new_to_old);
    engine.Run();
    engine.FillStats(stats);
    result = engine.TakeResult();
  } else {
    ParallelBoundedEngine engine(g, k, threads, options, nullptr);
    engine.Run();
    engine.FillStats(stats);
    result = engine.TakeResult();
  }
  if (stats != nullptr) stats->elapsed_seconds += timer.Seconds();
  return result;
}

}  // namespace egobw
