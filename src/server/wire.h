/// \file
/// The egobw serving wire format (docs/serving.md): length-prefixed binary
/// frames over a local stream socket, one request and one response per
/// connection.
///
/// A frame is a 4-byte little-endian payload length followed by the
/// payload; payloads are capped at kMaxFramePayload so a malicious or
/// corrupted length can neither allocate unboundedly nor stall a reader.
/// All integers are little-endian fixed width, doubles are IEEE-754 bit
/// patterns — the format is a memcpy on every platform this repo targets
/// and is validated field-by-field on decode (a malformed frame is a
/// Status, never UB or an EGOBW_CHECK).
///
/// Request payload:
///   u32 magic 'QWBE'   u32 k   f64 theta   u32 deadline_ms (0 = server
///   default)   u8 on_cancel (0 anytime / 1 abort)   u32 subset_count
///   subset_count × u32 vertex ids (empty = whole graph)
///   [mode extension, present only for non-exact queries:
///    u8 mode (1 approx / 2 hybrid)   f64 epsilon   f64 delta]
/// Response payload:
///   u32 magic 'RWBE'   i32 status code   u32 retry_after_ms   u8 certified
///   u64 frontier_remaining   f64 engine_seconds   u32 entry_count
///   entry_count × (u32 vertex, f64 cb)   u32 msg_len   msg bytes
///   [error-bar extension, present only for approx answers:
///    u32 hw_count (must equal entry_count)   hw_count × f64 half_width]
///
/// Version compatibility: both extensions are appended AFTER the v1 frame
/// and omitted for exact traffic, so old clients and servers interoperate
/// with new ones on every exact query. A new client sending an approx
/// query to an old server gets a clean kInvalidArgument ("subset length
/// mismatch" — the old decoder sees trailing bytes), never a wrong answer;
/// a new server answers old clients byte-identically to v1. New decoders
/// accept exactly 0 or the full extension — a partial tail is malformed.

#ifndef EGOBW_SERVER_WIRE_H_
#define EGOBW_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/ego_types.h"
#include "graph/graph.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace egobw {

/// Frame payloads larger than this are rejected on both ends (1 MiB covers
/// a ~260k-vertex subset or answer; see docs/serving.md).
inline constexpr uint32_t kMaxFramePayload = 1u << 20;

/// First payload word of a request ("QWBE" little-endian).
inline constexpr uint32_t kRequestMagic = 0x45425751;
/// First payload word of a response ("RWBE" little-endian).
inline constexpr uint32_t kResponseMagic = 0x45425752;

/// How a query wants its answer computed (the wire's u8 mode).
enum class QueryMode : uint8_t {
  kExact = 0,   ///< Exact top-k (the only v1 mode; no extension on wire).
  kApprox = 1,  ///< Sampled (ε,δ) estimates with error bars.
  kHybrid = 2,  ///< Exact answer warm-started by the estimate order.
};

/// One top-k query as it crosses the wire.
struct QueryRequest {
  uint32_t k = 10;                  ///< Result size; must be >= 1.
  double theta = 1.05;              ///< Gradient ratio; must be >= 1, finite.
  uint32_t deadline_ms = 0;         ///< Per-query budget; 0 = server default.
  OnCancel on_cancel = OnCancel::kAnytime;  ///< Degradation contract.
  std::vector<VertexId> subset;     ///< Empty = whole graph.
  QueryMode mode = QueryMode::kExact;  ///< Non-exact requires empty subset.
  double epsilon = 0.1;  ///< Approx/hybrid error scale, in (0, 1).
  double delta = 0.05;   ///< Approx/hybrid failure probability, in (0, 1).
};

/// One answer as it crosses the wire. `code` is the server-side verdict
/// (kOk, kResourceExhausted, kDeadlineExceeded, kInvalidArgument,
/// kUnavailable); transport failures surface as the client call's own
/// Status instead.
struct QueryResponse {
  StatusCode code = StatusCode::kOk;
  uint32_t retry_after_ms = 0;   ///< Shed responses: back-off hint (>= 1).
  bool certified = true;         ///< False = anytime partial answer.
  uint64_t frontier_remaining = 0;  ///< Work undecided at the deadline.
  double engine_seconds = 0.0;   ///< Server-side time inside the engine.
  TopKResult topk;               ///< Entries (certified mirrors topk).
  std::string message;           ///< Human-readable detail for errors.
  /// Approx answers only: per-entry (ε,δ) confidence radius, parallel to
  /// `topk` (entry i's true CB is within ±half_widths[i] of its cb with
  /// probability ≥ 1 − δ; 0 = the value is exact). Empty for exact and
  /// hybrid answers — and then absent from the wire, which is what keeps
  /// old clients decoding new servers' exact traffic.
  std::vector<double> half_widths;
};

/// Serializes a request into a payload (no length prefix).
std::vector<uint8_t> EncodeRequest(const QueryRequest& request);

/// Parses a request payload. Any structural violation (bad magic, short
/// buffer, trailing bytes, count overflow) is kInvalidArgument.
Result<QueryRequest> DecodeRequest(const uint8_t* data, size_t size);

/// Serializes a response into a payload (no length prefix).
std::vector<uint8_t> EncodeResponse(const QueryResponse& response);

/// Parses a response payload; structural violations are kInvalidArgument.
Result<QueryResponse> DecodeResponse(const uint8_t* data, size_t size);

/// Writes one length-prefixed frame to `fd` (retrying short writes,
/// ignoring SIGPIPE via MSG_NOSIGNAL). The socket's send timeout bounds a
/// stalled peer; on timeout or error returns kIOError.
Status WriteFrame(int fd, const std::vector<uint8_t>& payload);

/// Reads one length-prefixed frame from `fd` into *payload. Returns
/// kIOError on EOF/timeout/error and kInvalidArgument on an oversized
/// length prefix.
Status ReadFrame(int fd, std::vector<uint8_t>* payload);

}  // namespace egobw

#endif  // EGOBW_SERVER_WIRE_H_
