#include "graph/io.h"

#include <cctype>
#include <cstdio>
#include <string>
#include <unordered_map>

#include "graph/graph_builder.h"

namespace egobw {
namespace {

// Hard cap on one physical line: adversarial input (one endless line, a
// multi-megabyte token) fails with a clear error instead of exhausting
// memory. Real SNAP records are tens of bytes.
constexpr size_t kMaxLineBytes = 1 << 20;

// What ParseLine decided about one physical line.
enum class LineKind {
  kBlank,        // Empty, whitespace-only, or '#'/'%' comment.
  kEdge,         // Well-formed "u v" record; *a and *b are set.
  kBadToken,     // A field is not an unsigned decimal integer.
  kOverflow,     // A vertex id exceeds the 32-bit id space.
  kOneField,     // Exactly one field — an edge needs two.
  kExtraFields,  // More than two fields on the line.
};

// Parses one line. Fields are unsigned decimals separated by spaces/tabs;
// '\r' is treated as whitespace so CRLF files load unchanged; a missing
// trailing newline on the last line is fine (fgets just omits the '\n').
LineKind ParseLine(const char* line, uint64_t* a, uint64_t* b) {
  const char* p = line;
  while (*p == ' ' || *p == '\t' || *p == '\r') ++p;
  if (*p == '\0' || *p == '\n' || *p == '#' || *p == '%') {
    return LineKind::kBlank;
  }
  uint64_t vals[2];
  int found = 0;
  while (found < 2) {
    if (!std::isdigit(static_cast<unsigned char>(*p))) {
      return LineKind::kBadToken;
    }
    uint64_t v = 0;
    while (std::isdigit(static_cast<unsigned char>(*p))) {
      v = v * 10 + static_cast<uint64_t>(*p - '0');
      if (v > 0xffffffffULL) return LineKind::kOverflow;
      ++p;
    }
    vals[found++] = v;
    while (*p == ' ' || *p == '\t' || *p == '\r') ++p;
    if (found == 1 && (*p == '\0' || *p == '\n')) return LineKind::kOneField;
  }
  if (*p != '\0' && *p != '\n') {
    // A third decimal field reads as "extra fields" (common when a weighted
    // edge list is fed in by mistake); anything else is a bad token.
    return std::isdigit(static_cast<unsigned char>(*p))
               ? LineKind::kExtraFields
               : LineKind::kBadToken;
  }
  *a = vals[0];
  *b = vals[1];
  return LineKind::kEdge;
}

Status MalformedAt(const char* what, const std::string& path,
                   uint64_t line_no) {
  return Status::InvalidArgument(std::string(what) + " at " + path + ":" +
                                 std::to_string(line_no));
}

}  // namespace

Result<Graph> LoadEdgeList(const std::string& path,
                           const LoadOptions& options) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  GraphBuilder builder;
  std::unordered_map<uint64_t, VertexId> relabel;
  auto map_id = [&](uint64_t raw) -> VertexId {
    if (!options.relabel) return static_cast<VertexId>(raw);
    auto [it, inserted] =
        relabel.emplace(raw, static_cast<VertexId>(relabel.size()));
    (void)inserted;
    return it->second;
  };
  // Accumulate full PHYSICAL lines: a record longer than one fgets buffer
  // must not be silently split into two bogus records (the pre-hardening
  // loader did exactly that past 4095 bytes).
  char buf[4096];
  std::string line;
  uint64_t line_no = 0;
  bool eof = false;
  while (!eof) {
    line.clear();
    bool have_data = false;
    while (true) {
      if (std::fgets(buf, sizeof(buf), f) == nullptr) {
        eof = true;
        break;
      }
      have_data = true;
      line += buf;
      if (!line.empty() && line.back() == '\n') break;
      if (line.size() > kMaxLineBytes) {
        std::fclose(f);
        return MalformedAt("edge record line exceeds 1 MiB", path,
                           line_no + 1);
      }
    }
    if (!have_data) break;
    ++line_no;
    uint64_t a = 0;
    uint64_t b = 0;
    switch (ParseLine(line.c_str(), &a, &b)) {
      case LineKind::kBlank:
        break;
      case LineKind::kEdge:
        builder.AddEdge(map_id(a), map_id(b));
        break;
      case LineKind::kBadToken:
        std::fclose(f);
        return MalformedAt("malformed edge record (non-numeric field)", path,
                           line_no);
      case LineKind::kOverflow:
        std::fclose(f);
        return MalformedAt(
            "vertex id overflows the 32-bit id space (max 4294967295)", path,
            line_no);
      case LineKind::kOneField:
        std::fclose(f);
        return MalformedAt("edge record has only one field (need \"u v\")",
                           path, line_no);
      case LineKind::kExtraFields:
        std::fclose(f);
        return MalformedAt(
            "edge record has more than two fields (weighted input?)", path,
            line_no);
    }
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::IOError("read error on '" + path + "'");
  return builder.Build();
}

Status SaveEdgeList(const Graph& g, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  std::fprintf(f, "# egobw edge list: n=%u m=%llu\n", g.NumVertices(),
               static_cast<unsigned long long>(g.NumEdges()));
  for (const auto& [u, v] : g.Edges()) {
    std::fprintf(f, "%u\t%u\n", u, v);
  }
  if (std::fclose(f) != 0) {
    return Status::IOError("write error on '" + path + "'");
  }
  return Status::OK();
}

}  // namespace egobw
