// Before/after benchmark for the Rule-B diamond-enumeration kernel, emitting
// a machine-readable BENCH_kernels.json so the perf trajectory of this hot
// path is tracked across PRs.
//
// Three measurements, all on a power-law graph with n >= 100k:
//   * rule_b_kernel — the isolated kernel: per edge with |C| >= 2, enumerate
//     every non-adjacent pair of the (precomputed) common neighborhood.
//     Legacy = |C|² hash probes; bitmap = word-packed adjacency rows with
//     the engine-driven big-big phase. The JSON also carries the committed
//     pre-vectorization baseline row and the speedup against it.
//   * intersect_engine — the engine primitive in isolation: N(u) ∩ N(v)
//     positions over the sampled edges through std::set_intersection, the
//     forced word-blocked scalar path, and auto dispatch (AVX2 when the
//     machine has it).
//   * full_pass     — end-to-end ComputeAllEgoBetweenness under each kernel.
//
// Usage: kernel_report [output.json] [generator] [scale]
//   generator: "rmat" (default; SNAP-like skew, the kernel's target regime)
//              or "ba" (clustered Barabási–Albert, tamer hubs).
//   scale defaults to 17 (131,072 vertices); the CI smoke run passes a
//   smaller scale to stay fast.
//
// Large graphs are handled with a uniform edge-id stride sample (recorded
// in the JSON) so a single pass stays in minutes, and the end-to-end pass
// is skipped when the graph is big enough that the legacy baseline alone
// would take tens of minutes ("full_pass": null in that case).

#include <sys/resource.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/all_ego.h"
#include "core/diamond_kernel.h"
#include "graph/edge_set.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/simd_intersect.h"
#include "util/timer.h"

namespace {

using namespace egobw;

// Flattened common neighborhoods of every edge with |C| >= 2.
struct NeighborhoodCorpus {
  std::vector<uint64_t> offsets;  // One span per kept edge.
  std::vector<VertexId> data;
  uint64_t edges_kept = 0;
  uint64_t edges_total = 0;
  uint64_t stride = 1;  // Uniform edge-id sampling stride.

  std::span<const VertexId> At(size_t i) const {
    return {data.data() + offsets[i], offsets[i + 1] - offsets[i]};
  }
};

NeighborhoodCorpus BuildCorpus(const Graph& g, uint64_t stride) {
  NeighborhoodCorpus corpus;
  corpus.edges_total = g.NumEdges();
  corpus.stride = stride;
  corpus.offsets.push_back(0);
  std::vector<VertexId> c;
  for (EdgeId e = 0; e < g.NumEdges(); e += stride) {
    auto [u, v] = g.EdgeEndpoints(e);
    g.CommonNeighbors(u, v, &c);
    if (c.size() < 2) continue;
    corpus.data.insert(corpus.data.end(), c.begin(), c.end());
    corpus.offsets.push_back(corpus.data.size());
    ++corpus.edges_kept;
  }
  return corpus;
}

struct KernelRun {
  double seconds = 0.0;
  uint64_t pairs = 0;    // Non-adjacent pairs enumerated per repetition.
  uint64_t edges = 0;    // Edge neighborhoods processed per repetition.
  uint32_t repetitions = 0;

  double EdgesPerSec() const {
    return static_cast<double>(edges) * repetitions / seconds;
  }
  double PairsPerSec() const {
    return static_cast<double>(pairs) * repetitions / seconds;
  }
};

KernelRun RunKernel(const Graph& g, const EdgeSet& edges,
                    const NeighborhoodCorpus& corpus, KernelMode mode,
                    uint32_t repetitions) {
  KernelRun run;
  run.edges = corpus.edges_kept;
  run.repetitions = repetitions;
  DiamondKernel kernel(g.NumVertices());
  uint64_t pairs = 0;
  auto emit = [&pairs](VertexId, VertexId) { ++pairs; };
  // Warm-up pass (faults in the corpus and scratch), then timed reps.
  for (uint32_t rep = 0; rep <= repetitions; ++rep) {
    if (rep == 1) {
      run.pairs = pairs;  // Pairs per single pass, from the warm-up.
      pairs = 0;
    }
    WallTimer timer;
    for (size_t i = 0; i < corpus.edges_kept; ++i) {
      if (mode == KernelMode::kBitmap) {
        kernel.ForEachNonAdjacentPair(g, edges, corpus.At(i), emit);
      } else {
        DiamondKernel::ForEachNonAdjacentPairLegacy(edges, corpus.At(i),
                                                    emit);
      }
    }
    if (rep >= 1) run.seconds += timer.Seconds();
  }
  if (pairs != run.pairs * repetitions) {
    std::cerr << "kernel emitted an inconsistent pair count\n";
    std::abort();
  }
  return run;
}

// The committed pre-vectorization baseline (BENCH_kernels.json at PR 3,
// R-MAT scale 17, this container): the acceptance bar the vectorized scan
// must beat on the same artifact. Carried into the JSON so every report
// records both rows and the ratio.
struct CommittedBaseline {
  static constexpr double kPairsPerSec = 66665165.0;
  static constexpr double kSecondsPerPass = 40.368957;
  static constexpr double kSpeedupVsLegacy = 2.852;
};

// One intersect-primitive measurement: seconds per pass over the sampled
// edges and merged elements (d(u) + d(v)) per second.
struct IntersectRun {
  double seconds = 0.0;
  uint64_t elements = 0;  // Merge elements touched per pass.
  uint64_t hits = 0;      // Common neighbors found per pass (sanity).
  uint32_t repetitions = 0;

  double MelemsPerSec() const {
    return static_cast<double>(elements) * repetitions / seconds / 1e6;
  }
};

// Benchmarks one way of intersecting N(u) ∩ N(v) over the sampled edges.
// mode: 0 = std::set_intersection (values), 1 = forced word-blocked scalar
// positions, 2 = auto dispatch positions (AVX2 when available).
IntersectRun RunIntersect(const Graph& g, uint64_t stride, int mode,
                          uint32_t repetitions) {
  IntersectRun run;
  run.repetitions = repetitions;
  std::vector<uint32_t> values;
  std::vector<uint32_t> positions;
  for (uint32_t rep = 0; rep <= repetitions; ++rep) {
    uint64_t hits = 0;
    uint64_t elements = 0;
    WallTimer timer;
    for (EdgeId e = 0; e < g.NumEdges(); e += stride) {
      auto [u, v] = g.EdgeEndpoints(e);
      auto nu = g.Neighbors(u);
      auto nv = g.Neighbors(v);
      elements += nu.size() + nv.size();
      if (mode == 0) {
        values.clear();
        std::set_intersection(nu.begin(), nu.end(), nv.begin(), nv.end(),
                              std::back_inserter(values));
        hits += values.size();
      } else if (mode == 1) {
        hits += IntersectPositionsPath(IntersectPath::kScalar, nu, nv,
                                       nullptr, &positions);
      } else {
        hits += IntersectPositions(nu, nv, nullptr, &positions);
      }
    }
    if (rep == 0) {
      // Warm-up pass records the per-pass totals.
      run.hits = hits;
      run.elements = elements;
      continue;
    }
    run.seconds += timer.Seconds();
    if (hits != run.hits) {
      std::cerr << "intersect benchmark modes disagree on hit count\n";
      std::abort();
    }
  }
  return run;
}

double RunFullPass(const Graph& g, KernelMode mode, uint64_t* triangles) {
  SetDefaultKernelMode(mode);
  SearchStats stats;
  WallTimer timer;
  std::vector<double> cb = ComputeAllEgoBetweenness(g, &stats);
  double seconds = timer.Seconds();
  *triangles = stats.triangles;
  SetDefaultKernelMode(KernelMode::kBitmap);
  return seconds;
}

uint64_t PeakRssBytes() {
  struct rusage usage;
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;  // Linux: KiB.
}

void WriteJson(const std::string& path, const Graph& g,
               const std::string& generator, uint32_t scale,
               const NeighborhoodCorpus& corpus, const KernelRun& legacy,
               const KernelRun& bitmap, const IntersectRun& ix_std,
               const IntersectRun& ix_scalar, const IntersectRun& ix_auto,
               double full_legacy_s, double full_bitmap_s,
               uint64_t triangles) {
  std::ofstream out(path);
  char buf[256];
  out << "{\n";
  out << "  \"benchmark\": \"rule_b_diamond_kernel\",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"graph\": {\"generator\": \"%s\", \"scale\": %u, "
                "\"vertices\": %u, \"edges\": %llu, \"triangles\": %llu},\n",
                generator.c_str(), scale, g.NumVertices(),
                static_cast<unsigned long long>(g.NumEdges()),
                static_cast<unsigned long long>(triangles));
  out << buf;
  out << "  \"rule_b_kernel\": {\n";
  std::snprintf(buf, sizeof(buf),
                "    \"edge_sample_stride\": %llu,\n"
                "    \"edges_with_c_ge_2\": %llu,\n"
                "    \"nonadjacent_pairs\": %llu,\n",
                static_cast<unsigned long long>(corpus.stride),
                static_cast<unsigned long long>(corpus.edges_kept),
                static_cast<unsigned long long>(bitmap.pairs));
  out << buf;
  auto emit_side = [&](const char* name, const KernelRun& run,
                       const char* trailing) {
    std::snprintf(buf, sizeof(buf),
                  "    \"%s\": {\"seconds_per_pass\": %.6f, "
                  "\"edges_per_sec\": %.0f, \"pairs_per_sec\": %.0f}%s\n",
                  name, run.seconds / run.repetitions, run.EdgesPerSec(),
                  run.PairsPerSec(), trailing);
    out << buf;
  };
  emit_side("legacy_edgeset_probe", legacy, ",");
  emit_side("bitmap", bitmap, ",");
  std::snprintf(buf, sizeof(buf), "    \"speedup\": %.3f,\n",
                legacy.seconds / bitmap.seconds);
  out << buf;
  // The pre-vectorization row this artifact is gated against. Only the
  // default rmat scale-17 configuration is comparable; other runs (e.g.
  // the CI smoke at scale 12) emit null rather than a bogus cross-scale
  // ratio.
  if (generator == "rmat" && scale == 17) {
    std::snprintf(
        buf, sizeof(buf),
        "    \"committed_baseline\": {\"pairs_per_sec\": %.0f, "
        "\"seconds_per_pass\": %.6f, \"speedup_vs_legacy\": %.3f},\n",
        CommittedBaseline::kPairsPerSec, CommittedBaseline::kSecondsPerPass,
        CommittedBaseline::kSpeedupVsLegacy);
    out << buf;
    std::snprintf(buf, sizeof(buf),
                  "    \"speedup_vs_committed_baseline\": %.3f\n  },\n",
                  bitmap.PairsPerSec() / CommittedBaseline::kPairsPerSec);
    out << buf;
  } else {
    out << "    \"committed_baseline\": null,\n"
           "    \"speedup_vs_committed_baseline\": null\n  },\n";
  }
  auto emit_intersect = [&](const char* name, const IntersectRun& run,
                            const char* trailing) {
    std::snprintf(buf, sizeof(buf),
                  "    \"%s\": {\"seconds_per_pass\": %.6f, "
                  "\"melems_per_sec\": %.1f}%s\n",
                  name, run.seconds / run.repetitions, run.MelemsPerSec(),
                  trailing);
    out << buf;
  };
  out << "  \"intersect_engine\": {\n";
  std::snprintf(buf, sizeof(buf),
                "    \"avx2_enabled\": %s,\n"
                "    \"edges_sampled\": %llu,\n"
                "    \"elements_per_pass\": %llu,\n"
                "    \"common_neighbors_per_pass\": %llu,\n",
                SimdIntersectEnabled() ? "true" : "false",
                static_cast<unsigned long long>(
                    (g.NumEdges() + corpus.stride - 1) / corpus.stride),
                static_cast<unsigned long long>(ix_auto.elements),
                static_cast<unsigned long long>(ix_auto.hits));
  out << buf;
  emit_intersect("std_set_intersection", ix_std, ",");
  emit_intersect("scalar_blocked", ix_scalar, ",");
  emit_intersect("auto_dispatch", ix_auto, ",");
  std::snprintf(buf, sizeof(buf),
                "    \"speedup_auto_vs_std\": %.3f\n  },\n",
                ix_std.seconds / ix_auto.seconds);
  out << buf;
  if (full_legacy_s > 0.0) {
    std::snprintf(
        buf, sizeof(buf),
        "  \"full_pass\": {\"legacy_seconds\": %.3f, "
        "\"bitmap_seconds\": %.3f, \"legacy_edges_per_sec\": %.0f, "
        "\"bitmap_edges_per_sec\": %.0f, \"speedup\": %.3f},\n",
        full_legacy_s, full_bitmap_s,
        static_cast<double>(g.NumEdges()) / full_legacy_s,
        static_cast<double>(g.NumEdges()) / full_bitmap_s,
        full_legacy_s / full_bitmap_s);
    out << buf;
  } else {
    out << "  \"full_pass\": null,\n";
  }
  std::snprintf(buf, sizeof(buf), "  \"peak_rss_bytes\": %llu\n}\n",
                static_cast<unsigned long long>(PeakRssBytes()));
  out << buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << std::unitbuf;  // Progress lines survive a piped/killed run.
  std::string out_path = argc > 1 ? argv[1] : "BENCH_kernels.json";
  std::string generator = argc > 2 ? argv[2] : "rmat";
  uint32_t scale = argc > 3 ? static_cast<uint32_t>(std::atoi(argv[3])) : 17;

  if (generator != "rmat" && generator != "ba") {
    std::cerr << "unknown generator '" << generator
              << "' (expected rmat or ba)\n";
    return 1;
  }
  std::cout << "Generating " << generator << " scale " << scale << "...\n";
  Graph g = generator == "rmat"
                ? RMat(scale, 16, 0.57, 0.19, 0.19, 7)
                : BarabasiAlbert(1u << scale, 10, 7, 0.4);
  std::cout << "  n = " << g.NumVertices() << ", m = " << g.NumEdges()
            << ", d_max = " << g.MaxDegree() << "\n";

  EdgeSet edges(g);
  // Keep a single kernel pass in the minutes range: uniformly sample edge
  // ids so at most ~400k neighborhoods are materialized.
  uint64_t stride = std::max<uint64_t>(1, g.NumEdges() / 400000);
  std::cout << "Precomputing common neighborhoods (stride " << stride
            << ")...\n";
  NeighborhoodCorpus corpus = BuildCorpus(g, stride);
  std::cout << "  " << corpus.edges_kept << " sampled edges have |C| >= 2\n";

  const uint32_t reps = 2;
  std::cout << "Rule-B kernel, legacy EdgeSet probes...\n";
  KernelRun legacy =
      RunKernel(g, edges, corpus, KernelMode::kLegacyProbe, reps);
  std::cout << "Rule-B kernel, bitmap...\n";
  KernelRun bitmap = RunKernel(g, edges, corpus, KernelMode::kBitmap, reps);

  std::cout << "Intersect primitive (std / scalar-blocked / auto)...\n";
  IntersectRun ix_std = RunIntersect(g, stride, 0, reps);
  IntersectRun ix_scalar = RunIntersect(g, stride, 1, reps);
  IntersectRun ix_auto = RunIntersect(g, stride, 2, reps);
  if (ix_std.hits != ix_scalar.hits || ix_std.hits != ix_auto.hits) {
    std::cerr << "intersect benchmark modes disagree on hit counts\n";
    return 1;
  }

  uint64_t triangles = 0;
  double full_legacy_s = 0.0, full_bitmap_s = 0.0;
  if (g.NumEdges() <= 600000) {
    std::cout << "Full all-vertex pass, both kernels...\n";
    full_legacy_s = RunFullPass(g, KernelMode::kLegacyProbe, &triangles);
    full_bitmap_s = RunFullPass(g, KernelMode::kBitmap, &triangles);
  } else {
    std::cout << "Skipping full pass (graph too large for the legacy "
                 "baseline; kernel numbers above are the PR gate)\n";
  }

  WriteJson(out_path, g, generator, scale, corpus, legacy, bitmap, ix_std,
            ix_scalar, ix_auto, full_legacy_s, full_bitmap_s, triangles);

  double kernel_speedup = legacy.seconds / bitmap.seconds;
  std::printf(
      "\nRule-B kernel: legacy %.3fs  bitmap %.3fs  ->  %.2fx "
      "(%.1fM pairs/s -> %.1fM pairs/s)\n",
      legacy.seconds / reps, bitmap.seconds / reps, kernel_speedup,
      legacy.PairsPerSec() / 1e6, bitmap.PairsPerSec() / 1e6);
  if (generator == "rmat" && scale == 17) {
    std::printf(
        "vs committed baseline (%.1fM pairs/s): %.2fx\n",
        CommittedBaseline::kPairsPerSec / 1e6,
        bitmap.PairsPerSec() / CommittedBaseline::kPairsPerSec);
  }
  std::printf(
      "Intersect:     std %.3fs  scalar %.3fs  auto %.3fs  "
      "(%.0f / %.0f / %.0f Melem/s, avx2 %s)\n",
      ix_std.seconds / reps, ix_scalar.seconds / reps, ix_auto.seconds / reps,
      ix_std.MelemsPerSec(), ix_scalar.MelemsPerSec(),
      ix_auto.MelemsPerSec(), SimdIntersectEnabled() ? "on" : "off");
  if (full_legacy_s > 0.0) {
    std::printf("Full pass:     legacy %.3fs  bitmap %.3fs  ->  %.2fx\n",
                full_legacy_s, full_bitmap_s, full_legacy_s / full_bitmap_s);
  }
  std::printf("Peak RSS:      %.1f MiB\n", PeakRssBytes() / 1048576.0);
  std::printf("Wrote %s\n", out_path.c_str());
  return 0;
}
