#include "core/opt_search.h"

#include <optional>
#include <string>
#include <utility>

#include "core/bounded_search.h"
#include "core/edge_processor.h"
#include "core/smap_store.h"
#include "graph/degree_order.h"
#include "graph/edge_set.h"
#include "util/indexed_max_heap.h"
#include "util/logging.h"
#include "util/timer.h"

namespace egobw {

Result<TopKResult> RunOptBSearch(const Graph& g, uint32_t k,
                                 const OptBSearchOptions& options,
                                 SearchStats* stats) {
  EGOBW_CHECK_MSG(options.theta >= 1.0, "theta must be >= 1");
  SearchStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  WallTimer timer;

  uint32_t n = g.NumVertices();
  if (k > n) k = n;
  TopKResult result;
  if (k == 0 || n == 0) return result;

  BoundStore bounds(g);
  EdgeSet edge_set(g);
  BoundEdgeProcessor proc(g, edge_set, &bounds, stats);
  TopKAccumulator top(k);
  CandidateGate gate(options.theta);
  SearchObserver* obs = options.observer;
  // Stride 1: this poll gates one candidate pop, and a pop is a full exact
  // S-map evaluation (hub-sized egos run to hundreds of ms), so the clock
  // read is fully amortized — a coarse stride here would let a short
  // serving deadline overrun by many evaluations before being noticed.
  CancelPoller poller(options.cancel, 1);

  IndexedMaxHeap heap(n);
  SeedStaticBounds(g, &heap);

  // Candidates never decided when a cancellation fires: the heap residue
  // plus, mid-candidate, the popped vertex itself.
  uint64_t frontier = 0;
  bool cancelled = false;

  // Hybrid warm start: evaluate the ordered candidates exactly before any
  // bound-ordered pop. Their offers warm the accumulator boundary, so the
  // gate prunes and terminates earlier; heap keys are untouched and every
  // later pop is still re-validated, so the answer cannot change.
  if (options.order != nullptr) {
    for (VertexId v : options.order->eager) {
      if (cancelled) break;
      if (v >= n || !heap.Contains(v)) continue;  // Out of range / duplicate.
      if (poller.Expired()) {
        cancelled = true;
        frontier = heap.size();
        break;
      }
      // An eager candidate the warm boundary already dominates is pruned
      // instead of computed (the same monotone-boundary argument as the
      // gate; guards against estimate misses wasting an exact evaluation).
      double ub = bounds.Value(v);
      Admission verdict =
          gate.Decide(ub, ub, v, CandidateGate::Snapshot(top));
      if (verdict == Admission::kPrune || verdict == Admission::kTerminate) {
        // kTerminate only proves THIS candidate dominated (the eager list
        // is not bound-sorted), so it prunes v alone.
        heap.Remove(v);
        ++stats->pruned;
        continue;
      }
      heap.Remove(v);
      std::optional<double> cb = proc.ComputeExactCb(v, &poller);
      if (!cb.has_value()) {
        cancelled = true;
        frontier = heap.size() + 1;  // v itself was never decided.
        break;
      }
      ++stats->exact_computations;
      if (obs != nullptr) obs->OnExact(v, *cb);
      top.Offer(v, *cb);
    }
  }

  while (!cancelled && !heap.empty()) {
    if (poller.Expired()) {
      cancelled = true;
      frontier = heap.size();
      break;
    }
    auto [v, stale_bound] = heap.PopMax();
    if (obs != nullptr) obs->OnPop(v, stale_bound);

    // Lemma 3: the current ũb(v) is maintained incrementally by the store.
    double ub = bounds.Value(v);
    if (obs != nullptr) obs->OnBound(v, ub);

    Admission verdict =
        gate.Decide(stale_bound, ub, v, CandidateGate::Snapshot(top));
    if (verdict == Admission::kRepush) {
      heap.Push(v, ub);
      ++stats->heap_pushbacks;
      if (obs != nullptr) obs->OnPushBack(v, ub);
      continue;
    }
    if (verdict == Admission::kPrune) {
      ++stats->pruned;
      continue;
    }
    if (verdict == Admission::kTerminate) {
      // stale_bound was the largest remaining key: everything left is
      // strictly below the boundary.
      stats->pruned += 1 + heap.size();
      break;
    }

    // EgoBWCal: publish v's remaining edges' bound marks and rebuild S_v
    // with exact counts locally (split pipeline; see BoundEdgeProcessor).
    std::optional<double> cb = proc.ComputeExactCb(v, &poller);
    if (!cb.has_value()) {
      cancelled = true;
      frontier = heap.size() + 1;  // v itself was never decided.
      break;
    }
    ++stats->exact_computations;
    if (obs != nullptr) obs->OnExact(v, *cb);
    top.Offer(v, *cb);
  }

  stats->elapsed_seconds += timer.Seconds();
  if (cancelled) {
    stats->frontier_remaining += frontier;
    if (options.on_cancel == OnCancel::kAbort) {
      return Status::DeadlineExceeded(
          "OptBSearch: cancelled with " + std::to_string(frontier) +
          " candidates undecided");
    }
    result = top.Take();
    result.certified = false;
    return result;
  }
  result = top.Take();
  return result;
}

TopKResult OptBSearch(const Graph& g, uint32_t k,
                      const OptBSearchOptions& options, SearchStats* stats) {
  return std::move(RunOptBSearch(g, k, options, stats)).value();
}

}  // namespace egobw
