// The benchmark dataset registry.
//
// The paper evaluates on five SNAP networks (Table I). Offline, each is
// substituted with a synthetic stand-in of the same *type* whose generator
// reproduces the structural features the algorithms are sensitive to
// (degree skew, triangle density, community structure) at laptop scale.
// If real SNAP files are available, set EGOBW_DATA_DIR to a directory with
// <name>.txt edge lists and they are loaded instead.
//
// EGOBW_BENCH_SCALE (double, default 1.0) multiplies dataset sizes.

#ifndef EGOBW_BENCHLIB_DATASETS_H_
#define EGOBW_BENCHLIB_DATASETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace egobw {

struct Dataset {
  std::string name;         ///< Stand-in name, e.g. "Youtube-sim".
  std::string kind;         ///< "Social network", ... (Table I column).
  std::string substitution; ///< Generator recipe, for provenance.
  Graph graph;
};

/// The five Table-I stand-ins, ordered as in the paper
/// (Youtube, WikiTalk, DBLP, Pokec, LiveJournal).
std::vector<Dataset> StandardDatasets(double scale = -1.0);

/// A single stand-in by paper name ("Youtube", "WikiTalk", "DBLP", "Pokec",
/// "LiveJournal"); aborts on unknown names.
Dataset StandardDataset(const std::string& name, double scale = -1.0);

/// Case-study graphs (Fig. 12, Tables III/IV): DB-sim and IR-sim are
/// collaboration networks sized so exact Brandes terminates quickly.
Dataset CaseStudyDB(double scale = -1.0);
Dataset CaseStudyIR(double scale = -1.0);

/// Reduced variants for experiments that must run exact Brandes on the
/// full graph (Fig. 11).
Dataset BrandesComparable(const std::string& name, double scale = -1.0);

/// Synthetic scholar label for the case study ("A0001", ...).
std::string ScholarName(VertexId v);

}  // namespace egobw

#endif  // EGOBW_BENCHLIB_DATASETS_H_
