/// \file
/// Parallel bounded top-k ego-betweenness search: OptBSearch (Algorithm 2)
/// over a work-stealing candidate pool.
///
/// Architecture (one shared instance each, workers are symmetric):
///   * Sharded candidate pool — vertices are partitioned over P spinlocked
///     indexed max-heaps seeded with the static bounds. A worker pops the
///     best key across all shard tops (ties toward the larger id, matching
///     the serial heap) by scanning lock-free cached (key, id) tops — each
///     shard refreshes its cache under its lock on every mutation — and
///     locking only the winning shard, so a pop costs one lock instead of
///     P. The pop is additionally RELAXED toward the worker's home shard:
///     when the home top is within the gradient ratio θ of the global best
///     it is popped instead (counted in SearchStats::relaxed_pops), which
///     spreads P workers over P locks instead of piling them onto the one
///     winning shard — at the price of a few extra exact evaluations that θ
///     already tolerates; answers stay bit-identical because admission is
///     sound for any pop order, and 1-worker runs disable the relaxation so
///     their pop order stays exactly serial. A stale cache can misdirect a
///     scan (the winner is re-validated under its lock) but never lose an
///     entry: a worker observing every cache empty falls through to the
///     fully locked termination barrier. Keys are epoch-free by
///     construction: the indexed heaps hold at most one live entry per
///     vertex, and a popped key is validated against the fresh ũb(v) by the
///     shared CandidateGate exactly as in the serial engine.
///   * Shared bound store — all Rule A/B deltas publish rank-packed
///     membership marks into the striped-lock BoundStore (5-6-byte entries,
///     saturating counts; see core/smap_store.h), so every worker's ũb(v)
///     read is O(1) and monotonically non-increasing. Rank computation is
///     lock-free (reads of the shared, optionally degree-relabeled CSR);
///     only the set mutations run under the stripe locks.
///   * Exact computations — edges are claimed with a per-edge atomic flag
///     so each edge publishes its bound marks exactly once; CB(v) itself
///     comes from a worker-LOCAL exact rebuild of S_v fused into the same
///     pass (see BoundEdgeProcessor), so no worker ever waits for
///     concurrent workers' claims to complete and the exact value is
///     schedule-invariant by construction.
///
/// Termination barrier. The serial stopping condition (|R| = k and
/// t̂b ≤ min CB(R)) must survive concurrent bound decay; the pool decides it
/// cooperatively:
///   1. Admission is per-candidate: a popped key strictly below the
///      boundary (or a candidate that loses the canonical id tie-break) is
///      pruned; keys only decrease and the boundary only tightens, so a
///      prune verdict can never invalidate later. A dominated pop-max
///      additionally bulk-drains every shard whose top is strictly below
///      the boundary (all its entries are provably prunable) — but cannot
///      end the pool by fiat: an in-flight candidate popped earlier by
///      another worker may still re-push a key at or above the boundary,
///      which lands after the drain (or in a skipped shard) and flows
///      through normal admission.
///   2. The pool is finished exactly when every shard is empty AND no
///      worker holds a popped candidate (candidate holders are counted by
///      an atomic that is incremented under the shard lock at pop time and
///      decremented only after a re-push has been inserted). A push
///      generation counter read before and after the emptiness scan fences
///      the race between scanning one shard and a re-push landing in
///      another: an unchanged generation proves no key appeared anywhere
///      during the scan, re-establishing the serial invariant that every
///      vertex was either computed exactly or pruned against a boundary
///      its key could not beat.
///
/// With 1 thread the pool pops in exactly the serial key order and the gate
/// makes identical decisions, so stats (exact computations, pushbacks) match
/// OptBSearch; with any thread count the returned top-k is bit-for-bit
/// identical to the serial answer because admission is tie-aware and exact
/// values are schedule-invariant (see core/bounded_search.h).

#ifndef EGOBW_PARALLEL_PARALLEL_OPT_SEARCH_H_
#define EGOBW_PARALLEL_PARALLEL_OPT_SEARCH_H_

#include <cstdint>

#include "core/bounded_search.h"
#include "core/ego_types.h"
#include "graph/graph.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace egobw {

/// Tuning knobs for ParallelOptBSearch.
struct ParallelOptBSearchOptions {
  /// Gradient ratio θ ≥ 1 (paper default 1.05). Exactly OptBSearchOptions::
  /// theta: θ = 1 re-pushes on every bound improvement (fewest exact
  /// computations, most heap traffic), large θ never re-pushes (cheap heap,
  /// more exact computations); 1.05 balances the two on the paper's
  /// datasets (Exp-2). The answer is θ-independent.
  double theta = 1.05;
  /// Run on a Graph::RelabeledByDegree copy (one O(m) rebuild, better
  /// locality on power-law graphs); ids in the answer are mapped back.
  /// Results are identical either way.
  bool relabel_by_degree = true;
  /// Number of candidate-pool shards (rounded up to a power of two);
  /// 0 derives 2× the thread count, clamped to [1, 32].
  uint32_t shards = 0;
  /// Cooperative cancellation token. Every worker polls it at its pop
  /// boundary and at each edge-claim boundary inside an exact computation;
  /// the first worker observing expiry raises the engine's done flag, so
  /// all workers drain their in-flight S-map deltas and join cleanly — no
  /// torn stripe locks, no torn claims. Null = never cancel.
  const CancelToken* cancel = nullptr;
  /// What a fired token makes the search return (see util/cancellation.h).
  OnCancel on_cancel = OnCancel::kAbort;
  /// Optional warm-start ordering (the hybrid mode), in the CALLER's
  /// labeling regardless of relabel_by_degree: the listed vertices are
  /// claimed from the pool and computed exactly by the workers before
  /// bound-ordered popping begins. The answer is bit-identical with or
  /// without it — only exact-computation and pushback counts change (see
  /// CandidateOrder). Null = default order.
  const CandidateOrder* order = nullptr;
};

/// Returns the top-k vertices by ego-betweenness (cb desc, id asc), equal
/// bit-for-bit to OptBSearch(g, k) for every thread count. `threads` == 0
/// runs 1 worker; 1 worker runs inline (no thread is spawned).
///
/// Cancellation (docs/robustness.md): with a fired `options.cancel`, kAbort
/// returns Status kDeadlineExceeded; kAnytime returns the accumulator
/// contents with TopKResult::certified = false. Either way the workers have
/// already joined and `stats->frontier_remaining` counts the candidates
/// left in the pool. A null or unfired token returns the exact answer,
/// bit-identical to the token-free run.
Result<TopKResult> RunParallelOptBSearch(
    const Graph& g, uint32_t k, size_t threads,
    const ParallelOptBSearchOptions& options = {},
    SearchStats* stats = nullptr);

/// Legacy entry point: as RunParallelOptBSearch, but aborts the process on
/// an abort-mode cancellation instead of returning a Status.
TopKResult ParallelOptBSearch(const Graph& g, uint32_t k, size_t threads,
                              const ParallelOptBSearchOptions& options = {},
                              SearchStats* stats = nullptr);

}  // namespace egobw

#endif  // EGOBW_PARALLEL_PARALLEL_OPT_SEARCH_H_
