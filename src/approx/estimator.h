/// \file
/// Per-vertex sampling estimator for ego-betweenness with an (ε,δ)
/// guarantee (docs/approximation.md).
///
/// CB(u) is a sum over the C(d,2) unordered pairs {a,b} ⊆ N(u) of a flow
/// term f(a,b) ∈ [0,1]: 0 when a,b are adjacent, else 1/(cnt+1) with cnt the
/// number of common neighbors of a and b inside N(u). Sampling pairs
/// uniformly with replacement and averaging f gives an unbiased estimate of
/// CB(u)/C(d,2); the estimate is scaled back by C(d,2) and an adaptive
/// stopping rule bounds the error:
///
///   * a Hoeffding worst-case cap t_max = ⌈ln(4/δ) / (2ε²)⌉ guarantees
///     |mean − μ| ≤ ε with probability ≥ 1 − δ/2 at t_max samples;
///   * empirical-Bernstein checkpoints (Audibert et al.; the adaptive
///     discipline of Chehreghani et al., PAPERS.md) stop far earlier on
///     low-variance egos: at geometrically spaced sample counts the radius
///       r = sqrt(2·V̂·ln(3/δ_j)/t) + 3·ln(3/δ_j)/t,   δ_j = (δ/2)/(j(j+1)),
///     is tested against ε; the δ_j sum to δ/2, so the union of every
///     checkpoint plus the Hoeffding cap spends exactly δ.
///
/// Either way |estimate − CB(u)| ≤ half_width with probability ≥ 1 − δ,
/// where half_width ≤ ε·C(d,2). Vertices whose pair universe is no larger
/// than t_max are enumerated exactly instead (sampling could not be
/// cheaper); they return half_width 0 and exact = true.
///
/// Determinism: the sample stream of vertex v is seeded by mixing the
/// global seed with v, so an estimate is a pure function of
/// (graph, v, ε, δ, seed) — independent of scan order, thread schedule, or
/// whether it is produced standalone or inside RunApproxTopK.

#ifndef EGOBW_APPROX_ESTIMATOR_H_
#define EGOBW_APPROX_ESTIMATOR_H_

#include <cstdint>
#include <optional>

#include "core/naive.h"
#include "graph/graph.h"
#include "util/cancellation.h"

namespace egobw {

/// Accuracy and determinism knobs shared by the estimator and the
/// ApproxTopK engine (core semantics in the file comment).
struct ApproxOptions {
  /// Per-vertex error scale: |estimate − CB(v)| ≤ ε·C(d(v),2) with
  /// probability ≥ 1 − δ. Must lie in (0, 1).
  double epsilon = 0.1;
  /// Per-vertex failure probability. Must lie in (0, 1).
  double delta = 0.05;
  /// Global seed; per-vertex streams are derived from (seed, v), so two
  /// runs with the same seed produce bit-identical estimates.
  uint64_t seed = 42;
  /// Cooperative cancellation token, polled per pair sample and per
  /// neighbor of the exact-small path. Null = never cancel.
  const CancelToken* cancel = nullptr;
  /// What a fired token makes RunApproxTopK return (the per-vertex
  /// estimator itself just returns nullopt; see util/cancellation.h).
  OnCancel on_cancel = OnCancel::kAnytime;
};

/// One vertex's estimate with its confidence radius.
struct VertexEstimate {
  VertexId vertex = 0;      ///< The vertex, in the caller's labeling.
  double estimate = 0.0;    ///< Unbiased estimate of CB(vertex).
  double half_width = 0.0;  ///< (ε,δ) radius in CB units; 0 when exact.
  uint64_t samples = 0;     ///< Pair samples drawn (0 when exact).
  bool exact = false;       ///< Small ego enumerated exactly, no sampling.
};

/// The Hoeffding worst-case sample count ⌈ln(4/δ) / (2ε²)⌉ — the most
/// samples the estimator ever draws for one vertex, and the exact-small
/// enumeration threshold. Requires ε, δ ∈ (0, 1).
uint64_t HoeffdingSampleCap(double epsilon, double delta);

/// Deterministic per-vertex sample-stream seed (SplitMix64 finalizer over
/// the global seed and v).
uint64_t PerVertexSeed(uint64_t seed, VertexId v);

/// Estimates CB(v) under `options` (see file comment). `scratch` is
/// reused across calls; `poller` (nullable) is consulted once per pair
/// sample and once per neighbor on the exact-small path — a fired poller
/// returns nullopt and leaves only scratch state behind. With a null or
/// unfired poller the result is deterministic in (graph, v, options).
std::optional<VertexEstimate> EstimateVertex(const Graph& g, VertexId v,
                                             const ApproxOptions& options,
                                             EgoScratch* scratch,
                                             CancelPoller* poller);

}  // namespace egobw

#endif  // EGOBW_APPROX_ESTIMATOR_H_
